// Tests for the optional/extension features:
//   * RedzoneImpl::kShadow — the ASAN-style alternative redzone scheme
//     (§4.1), including the padding-overflow blind spot that motivates the
//     paper's metadata-in-redzone design;
//   * low-fat heap randomization (§8).
#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/heap/shadow_allocator.h"
#include "src/workloads/builder.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

RedFatOptions ShadowOpts() {
  RedFatOptions o;
  o.redzone_impl = RedzoneImpl::kShadow;
  return o;
}

InstrumentResult Instrument(const BinaryImage& img, const RedFatOptions& opts) {
  RedFatTool tool(opts);
  Result<InstrumentResult> r = tool.Instrument(img);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return std::move(r).value();
}

// p = malloc(size); q = malloc(size); access p[input()] (8-byte elems).
BinaryImage IndexedProgram(uint64_t size, bool read = false) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, size);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRdi, size);
  as.HostCall(HostFn::kMalloc);
  as.HostCall(HostFn::kInputU64);
  if (read) {
    as.Load(Reg::kR14, MemBIS(Reg::kR12, Reg::kRax, 3, 0));
  } else {
    as.MovRI(Reg::kR14, 1);
    as.Store(Reg::kR14, MemBIS(Reg::kR12, Reg::kRax, 3, 0));
  }
  pb.EmitExit(0);
  return pb.Finish();
}

TEST(ShadowImpl, ValidProgramRunsClean) {
  const BinaryImage img = IndexedProgram(64);
  const InstrumentResult ir = Instrument(img, ShadowOpts());
  RunConfig cfg;
  cfg.inputs = {3};
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFatShadow, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit) << out.result.fault_message;
  EXPECT_TRUE(out.errors.empty());
}

TEST(ShadowImpl, DetectsRedzoneHit) {
  const BinaryImage img = IndexedProgram(64);
  const InstrumentResult ir = Instrument(img, ShadowOpts());
  RunConfig cfg;
  cfg.inputs = {8};  // p[8]: trailing shadow redzone
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFatShadow, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
}

TEST(ShadowImpl, DetectsUseAfterFree) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 32);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kFree);
  as.Load(Reg::kRax, MemAt(Reg::kR12, 0));
  pb.EmitExit(0);
  const InstrumentResult ir = Instrument(pb.Finish(), ShadowOpts());
  RunConfig cfg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFatShadow, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kUaf);
}

TEST(ShadowImpl, DetectsNonIncrementalSkipViaLowFatPart) {
  const BinaryImage img = IndexedProgram(64);
  const InstrumentResult ir = Instrument(img, ShadowOpts());
  RunConfig cfg;
  cfg.inputs = {10};  // skips the redzone into q's payload
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFatShadow, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort)
      << "the concatenated LowFat class-bounds check still catches skips";
}

TEST(ShadowImpl, MissesPaddingOverflowUnlikeMetadataImpl) {
  // malloc(600) lands in the 1024-byte class: ~408 bytes of padding beyond
  // the 16-byte trailing shadow redzone. An access into deep padding:
  //   * metadata impl: UB > BASE+16+SIZE -> caught (exact malloc bounds);
  //   * shadow impl: shadow says OK, class bounds say OK -> missed.
  const BinaryImage img = IndexedProgram(600);
  RunConfig cfg;
  cfg.inputs = {80};  // byte offset 640: past payload+redzone, within class

  const InstrumentResult meta = Instrument(img, RedFatOptions{});
  EXPECT_EQ(RunImage(meta.image, RuntimeKind::kRedFat, cfg).result.reason,
            HaltReason::kMemErrorAbort)
      << "metadata-in-redzone checks the exact malloc size";

  const InstrumentResult shadow = Instrument(img, ShadowOpts());
  EXPECT_EQ(RunImage(shadow.image, RuntimeKind::kRedFatShadow, cfg).result.reason,
            HaltReason::kExit)
      << "the ASAN-style scheme cannot see padding overflows (paper §4.2)";
}

TEST(ShadowImpl, SynthProgramBehavesIdentically) {
  SynthParams p;
  p.seed = 77;
  const BinaryImage img = GenerateSynthProgram(p);
  RunConfig cfg;
  cfg.inputs = RefInputs(15);
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  const InstrumentResult ir = Instrument(img, ShadowOpts());
  const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFatShadow, cfg);
  EXPECT_EQ(hard.result.reason, HaltReason::kExit) << hard.result.fault_message;
  EXPECT_EQ(hard.outputs, base.outputs);
  EXPECT_TRUE(hard.errors.empty());
}

TEST(ShadowImpl, AllocatorShadowLifecycle) {
  Memory mem;
  ShadowRedFatAllocator alloc;
  const uint64_t p = alloc.Malloc(mem, 40).ptr;
  ASSERT_NE(p, 0u);
  auto shadow_at = [&](uint64_t a) {
    return mem.Read(kGuestShadowBase + (a >> 3), 1);
  };
  EXPECT_EQ(shadow_at(p), 0u);
  EXPECT_EQ(shadow_at(p + 39), 0u);
  EXPECT_EQ(shadow_at(p - 8), static_cast<uint64_t>(GuestShadow::kRedzone));
  EXPECT_EQ(shadow_at(p + 40), static_cast<uint64_t>(GuestShadow::kRedzone));
  alloc.Free(mem, p);
  EXPECT_EQ(shadow_at(p), static_cast<uint64_t>(GuestShadow::kFreed));
}

TEST(HeapRandomization, ChangesPlacementDeterministicallyPerSeed) {
  Memory mem;
  LowFatHeap plain, r1, r2, r1b;
  r1.EnableRandomization(111);
  r1b.EnableRandomization(111);
  r2.EnableRandomization(222);
  const uint64_t a = plain.Alloc(mem, 64).slot;
  const uint64_t b = r1.Alloc(mem, 64).slot;
  const uint64_t c = r2.Alloc(mem, 64).slot;
  EXPECT_EQ(b, r1b.Alloc(mem, 64).slot) << "same seed, same layout";
  EXPECT_NE(a, b) << "randomized start offset";
  EXPECT_NE(b, c) << "different seeds differ";
  // Invariants hold regardless of randomization.
  EXPECT_EQ(LowFatBase(b), b);
  EXPECT_EQ(LowFatSize(b), 64u);
}

TEST(HeapRandomization, RandomizedReuseOrder) {
  Memory mem;
  LowFatHeap heap(/*quarantine_slots=*/0);
  heap.EnableRandomization(5);
  std::vector<uint64_t> slots;
  for (int i = 0; i < 16; ++i) {
    slots.push_back(heap.Alloc(mem, 32).slot);
  }
  for (uint64_t s : slots) {
    heap.Free(mem, s);
  }
  // LIFO would return slots back-to-front; the two-freelist coin-flip reuse
  // should deviate somewhere within 16 draws.
  bool deviated = false;
  for (int i = 15; i >= 0; --i) {
    if (heap.Alloc(mem, 32).slot != slots[static_cast<size_t>(i)]) {
      deviated = true;
      break;
    }
  }
  EXPECT_TRUE(deviated);
}

TEST(HeapRandomization, HardenedProgramStillWorks) {
  // End-to-end: randomized libredfat runtime under an instrumented binary.
  SynthParams p;
  p.seed = 31;
  const BinaryImage img = GenerateSynthProgram(p);
  const InstrumentResult ir = Instrument(img, RedFatOptions{});
  Vm vm;
  RedFatAllocator alloc;
  alloc.EnableHeapRandomization(0xd1ce);
  WriteLowFatTables(&vm.memory());
  vm.set_allocator(&alloc);
  vm.set_inputs(RefInputs(10));
  vm.LoadImage(ir.image);
  const RunResult r = vm.Run();
  EXPECT_EQ(r.reason, HaltReason::kExit) << r.fault_message;
  EXPECT_TRUE(vm.mem_errors().empty());
}

}  // namespace
}  // namespace redfat
