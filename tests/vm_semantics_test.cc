// Deeper VM semantics: flag behaviour per operation class, memory access
// sizes and straddles, call depth, memcpy overlap, decode-fuzz robustness.
#include <gtest/gtest.h>

#include "src/heap/legacy_heap.h"
#include "src/support/rng.h"
#include "src/vm/vm.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

// Runs a two-operand computation and returns (result, flags-pack output).
struct AluResult {
  uint64_t value = 0;
  uint64_t flags = 0;
};

AluResult RunAlu(Op op, uint64_t a, uint64_t b) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, a);
  as.MovRI(Reg::kRbx, b);
  as.Emit({.op = op, .r0 = Reg::kRax, .r1 = Reg::kRbx});
  as.Pushf();
  as.Pop(Reg::kRcx);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  as.MovRR(Reg::kRdi, Reg::kRcx);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  vm.LoadImage(pb.Finish());
  const RunResult r = vm.Run();
  EXPECT_EQ(r.reason, HaltReason::kExit);
  return AluResult{vm.outputs().at(0), vm.outputs().at(1)};
}

constexpr uint64_t kZf = 1;
constexpr uint64_t kSf = 2;
constexpr uint64_t kCf = 4;
constexpr uint64_t kOf = 8;

TEST(VmFlags, AddCarryAndOverflow) {
  // Unsigned carry without signed overflow.
  AluResult r = RunAlu(Op::kAddRR, ~0ull, 1);
  EXPECT_EQ(r.value, 0u);
  EXPECT_TRUE(r.flags & kZf);
  EXPECT_TRUE(r.flags & kCf);
  EXPECT_FALSE(r.flags & kOf);
  // Signed overflow without carry: INT64_MAX + 1.
  r = RunAlu(Op::kAddRR, 0x7fffffffffffffffull, 1);
  EXPECT_TRUE(r.flags & kOf);
  EXPECT_FALSE(r.flags & kCf);
  EXPECT_TRUE(r.flags & kSf);
}

TEST(VmFlags, SubBorrowAndOverflow) {
  AluResult r = RunAlu(Op::kSubRR, 0, 1);  // borrow
  EXPECT_EQ(r.value, ~0ull);
  EXPECT_TRUE(r.flags & kCf);
  EXPECT_TRUE(r.flags & kSf);
  r = RunAlu(Op::kSubRR, 0x8000000000000000ull, 1);  // INT64_MIN - 1 overflows
  EXPECT_TRUE(r.flags & kOf);
  EXPECT_FALSE(r.flags & kCf);
}

TEST(VmFlags, LogicClearsCarryOverflow) {
  const AluResult r = RunAlu(Op::kXorRR, 0xffull, 0xffull);
  EXPECT_EQ(r.value, 0u);
  EXPECT_TRUE(r.flags & kZf);
  EXPECT_FALSE(r.flags & kCf);
  EXPECT_FALSE(r.flags & kOf);
}

TEST(VmFlags, CmpLeavesOperandsUntouched) {
  const AluResult r = RunAlu(Op::kCmpRR, 5, 9);
  EXPECT_EQ(r.value, 5u);
  EXPECT_TRUE(r.flags & kCf);  // 5 < 9 unsigned
}

TEST(VmFlags, ZeroShiftPreservesFlags) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 1);
  as.CmpI(Reg::kRax, 1);  // ZF set
  as.ShlI(Reg::kRax, 0);  // must not disturb flags
  as.Pushf();
  as.Pop(Reg::kRdi);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  vm.LoadImage(pb.Finish());
  vm.Run();
  EXPECT_TRUE(vm.outputs().at(0) & kZf);
}

class StoreLoadSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(StoreLoadSizes, TruncatesAndZeroExtends) {
  const unsigned size_log2 = GetParam();
  ProgramBuilder pb;
  const uint64_t buf = pb.AddZeroData(32);
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 0xf1f2f3f4f5f6f7f8ull);
  as.MovRI(Reg::kRbx, buf);
  // Pre-fill neighbors to prove the store touches only its bytes.
  as.MovRI(Reg::kRcx, ~0ull);
  as.Store(Reg::kRcx, MemAt(Reg::kRbx, 8));
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8, static_cast<uint8_t>(size_log2)));
  as.Load(Reg::kRdi, MemAt(Reg::kRbx, 8));
  as.HostCall(HostFn::kOutputU64);
  as.Load(Reg::kRdi, MemAt(Reg::kRbx, 8, static_cast<uint8_t>(size_log2)));
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  vm.LoadImage(pb.Finish());
  vm.Run();
  const unsigned bytes = 1u << size_log2;
  const uint64_t mask = bytes == 8 ? ~0ull : ((uint64_t{1} << (8 * bytes)) - 1);
  const uint64_t expect_word = (~0ull & ~mask) | (0xf1f2f3f4f5f6f7f8ull & mask);
  EXPECT_EQ(vm.outputs().at(0), expect_word);
  EXPECT_EQ(vm.outputs().at(1), 0xf1f2f3f4f5f6f7f8ull & mask) << "loads zero-extend";
}

INSTANTIATE_TEST_SUITE_P(AllSizes, StoreLoadSizes, ::testing::Values(0u, 1u, 2u, 3u));

TEST(VmExec2, DeepRecursion) {
  // fib-style recursion depth 200: stack handling under repeated call/ret.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fn = as.NewLabel();
  auto done = as.NewLabel();
  as.MovRI(Reg::kRax, 0);
  as.MovRI(Reg::kRcx, 200);
  as.Call(fn);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kExit);
  as.Bind(fn);
  as.CmpI(Reg::kRcx, 0);
  as.Jcc(Cond::kEq, done);
  as.AddI(Reg::kRax, 1);
  as.SubI(Reg::kRcx, 1);
  as.Call(fn);  // recurse
  as.Bind(done);
  as.Ret();
  Vm vm;
  vm.LoadImage(pb.Finish());
  const RunResult r = vm.Run();
  EXPECT_EQ(r.reason, HaltReason::kExit);
  EXPECT_EQ(r.exit_status, 200u);
}

TEST(VmExec2, MemcpyBetweenHeapObjects) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR13, Reg::kRax);
  as.MovRI(Reg::kRax, 0x4242424242424242ull);
  as.Store(Reg::kRax, MemAt(Reg::kR12, 16));
  as.MovRR(Reg::kRdi, Reg::kR13);
  as.MovRR(Reg::kRsi, Reg::kR12);
  as.MovRI(Reg::kRdx, 64);
  as.HostCall(HostFn::kMemcpy);
  as.Load(Reg::kRdi, MemAt(Reg::kR13, 16));
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  GlibcLikeAllocator alloc;
  vm.set_allocator(&alloc);
  vm.LoadImage(pb.Finish());
  vm.Run();
  EXPECT_EQ(vm.outputs().at(0), 0x4242424242424242ull);
}

TEST(VmExec2, IndirectJumpTable) {
  // switch via jump table in data (the pattern CFG recovery must survive).
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto case0 = as.NewLabel();
  auto case1 = as.NewLabel();
  auto table_done = as.NewLabel();
  const uint64_t table = pb.AddZeroData(16);
  as.MovLabelAddr(Reg::kR10, case0);
  as.Store(Reg::kR10, MemAbs(static_cast<int32_t>(table)));
  as.MovLabelAddr(Reg::kR10, case1);
  as.Store(Reg::kR10, MemAbs(static_cast<int32_t>(table + 8)));
  as.HostCall(HostFn::kInputU64);
  as.Load(Reg::kR10, MemBIS(Reg::kNone, Reg::kRax, 3, static_cast<int32_t>(table)));
  as.JmpR(Reg::kR10);
  as.Bind(case0);
  as.MovRI(Reg::kRdi, 100);
  as.Jmp(table_done);
  as.Bind(case1);
  as.MovRI(Reg::kRdi, 200);
  as.Bind(table_done);
  as.HostCall(HostFn::kExit);
  const BinaryImage img = pb.Finish();
  for (uint64_t input : {0ull, 1ull}) {
    Vm vm;
    vm.set_inputs({input});
    vm.LoadImage(img);
    const RunResult r = vm.Run();
    EXPECT_EQ(r.exit_status, input == 0 ? 100u : 200u);
  }
}

TEST(IsaFuzz, RandomBytesNeverCrashDecoder) {
  Rng rng(0xfade);
  uint8_t buf[16];
  for (int i = 0; i < 200000; ++i) {
    for (uint8_t& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    Result<Decoded> d = Decode(buf, sizeof(buf));
    if (d.ok()) {
      // Whatever decodes must re-encode to the same prefix.
      std::vector<uint8_t> out;
      Encode(d.value().insn, &out);
      ASSERT_EQ(out.size(), d.value().length);
    }
  }
}

TEST(IsaFuzz, RandomProgramsNeverCrashVm) {
  // Executing random bytes must end in a fault/halt/limit, never a host
  // crash. (The Vm's own CHECKs would abort the test process.)
  Rng rng(0xfeed);
  for (int trial = 0; trial < 200; ++trial) {
    BinaryImage img;
    img.entry = kCodeBase;
    Section text;
    text.kind = Section::Kind::kText;
    text.vaddr = kCodeBase;
    for (int i = 0; i < 256; ++i) {
      text.bytes.push_back(static_cast<uint8_t>(rng.Next()));
    }
    img.sections.push_back(std::move(text));
    Vm vm;
    GlibcLikeAllocator alloc;
    vm.set_allocator(&alloc);
    vm.set_instruction_limit(5000);
    vm.LoadImage(img);
    const RunResult r = vm.Run();
    (void)r;  // any HaltReason is acceptable; surviving is the property
  }
}

}  // namespace
}  // namespace redfat
