// §7.4: "if the main program is instrumented by RedFat, but a dynamic
// library dependency is not, then only the former will enjoy memory error
// protection ... it is possible to separately instrument both."
//
// A main executable calls into a shared-object image through a function
// pointer; the vulnerable store lives in the library.
#include <gtest/gtest.h>

#include <string>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

// Library: one exported function at its base. Expects r12 = buffer, rax =
// attacker index; writes buffer[rax] (8-byte elements) and returns.
BinaryImage BuildLibrary() {
  ProgramBuilder pb(kLibCodeBase, kLibDataBase);
  Assembler& as = pb.text();
  as.MovRI(Reg::kR14, 0x77);
  as.Store(Reg::kR14, MemBIS(Reg::kR12, Reg::kRax, 3, 0));  // the vulnerable site
  as.Ret();
  return pb.Finish();
}

// Main: p = malloc(64); q = malloc(64); lib_fn(p, input()); exit 0.
// Also performs one in-bounds store of its own (so the main image carries
// instrumentation too).
BinaryImage BuildMain() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRI(Reg::kR14, 1);
  as.Store(Reg::kR14, MemAt(Reg::kR12, 0));  // main's own (benign) store
  as.HostCall(HostFn::kInputU64);
  as.MovRI(Reg::kR11, kLibCodeBase);  // "dlsym": the library entry address
  as.CallR(Reg::kR11);
  pb.EmitExit(0);
  return pb.Finish();
}

InstrumentResult Harden(const BinaryImage& img, uint64_t tramp_base) {
  RedFatOptions opts;
  opts.trampoline_base = tramp_base;
  RedFatTool tool(opts);
  Result<InstrumentResult> r = tool.Instrument(img);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return std::move(r).value();
}

constexpr uint64_t kLibTrampBase = kLibCodeBase + 0x1000000;

TEST(SharedObject, UninstrumentedEverythingIsVulnerable) {
  const BinaryImage lib = BuildLibrary();
  const BinaryImage main_img = BuildMain();
  RunConfig attack;
  attack.inputs = {10};  // redzone-skipping index
  const RunOutcome out = RunImages({&lib, &main_img}, RuntimeKind::kRedFat, attack);
  EXPECT_EQ(out.result.reason, HaltReason::kExit) << "no checks anywhere: silent corruption";
  EXPECT_TRUE(out.errors.empty());
}

TEST(SharedObject, InstrumentedMainAloneMissesLibraryBug) {
  const BinaryImage lib = BuildLibrary();
  const InstrumentResult main_hard = Harden(BuildMain(), kTrampolineBase);
  EXPECT_GE(main_hard.plan_stats.full_sites, 1u) << "main's own store is protected";
  RunConfig attack;
  attack.inputs = {10};
  const RunOutcome out = RunImages({&lib, &main_hard.image}, RuntimeKind::kRedFat, attack);
  EXPECT_EQ(out.result.reason, HaltReason::kExit)
      << "the vulnerable store executes in the uninstrumented library (§7.4)";
}

TEST(SharedObject, InstrumentingTheLibraryClosesTheGap) {
  const InstrumentResult lib_hard = Harden(BuildLibrary(), kLibTrampBase);
  const InstrumentResult main_hard = Harden(BuildMain(), kTrampolineBase);
  RunConfig attack;
  attack.inputs = {10};
  const RunOutcome out =
      RunImages({&lib_hard.image, &main_hard.image}, RuntimeKind::kRedFat, attack);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);

  RunConfig benign;
  benign.inputs = {3};
  const RunOutcome ok =
      RunImages({&lib_hard.image, &main_hard.image}, RuntimeKind::kRedFat, benign);
  EXPECT_EQ(ok.result.reason, HaltReason::kExit) << ok.result.fault_message;
  EXPECT_TRUE(ok.errors.empty());
}

TEST(SharedObject, TelemetryKeysCountersPerImage) {
  // Both planners assign site ids starting at 0: without (image, site)
  // keying the library's and the program's counters would merge. The library
  // loads first (ordinal 0, plain ids); the program keys into ordinal 1.
  const InstrumentResult lib_hard = Harden(BuildLibrary(), kLibTrampBase);
  const InstrumentResult main_hard = Harden(BuildMain(), kTrampolineBase);
  TelemetryRegistry telemetry;
  RunConfig benign;
  benign.inputs = {3};
  benign.telemetry = &telemetry;
  const RunOutcome out =
      RunImages({&lib_hard.image, &main_hard.image}, RuntimeKind::kRedFat, benign);
  ASSERT_EQ(out.result.reason, HaltReason::kExit) << out.result.fault_message;

  const TelemetrySnapshot snap = telemetry.Snapshot();
  uint64_t lib_checks = 0;
  uint64_t main_checks = 0;
  for (const SiteTelemetry& st : snap.sites) {
    if (ImageOfSiteKey(st.site) == 0) {
      lib_checks += st.checks();
      EXPECT_LT(SiteOfSiteKey(st.site), lib_hard.sites.size());
    } else {
      EXPECT_EQ(ImageOfSiteKey(st.site), 1u);
      main_checks += st.checks();
      EXPECT_LT(SiteOfSiteKey(st.site), main_hard.sites.size());
    }
  }
  EXPECT_GT(lib_checks, 0u) << "the library's store executed its check";
  EXPECT_GT(main_checks, 0u) << "the program's store executed its check";
}

TEST(SharedObject, TraceSiteAddrsResolvePerImage) {
  const InstrumentResult lib_hard = Harden(BuildLibrary(), kLibTrampBase);
  const InstrumentResult main_hard = Harden(BuildMain(), kTrampolineBase);
  TraceWriter trace;
  RunConfig attack;
  attack.inputs = {10};
  attack.policy = Policy::kLog;
  attack.trace = &trace;
  attack.image_sites = {&lib_hard.sites, &main_hard.sites};
  const RunOutcome out =
      RunImages({&lib_hard.image, &main_hard.image}, RuntimeKind::kRedFat, attack);
  ASSERT_FALSE(out.errors.empty());

  // The faulting store lives in the library: its mem_error slice must carry
  // the library instruction's address, resolvable only through the
  // per-image site tables.
  ASSERT_LT(out.errors[0].site, lib_hard.sites.size());
  const uint64_t lib_addr = lib_hard.sites[out.errors[0].site].addr;
  EXPECT_GE(lib_addr, kLibCodeBase);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find(StrFormat("\"site_addr\":%llu",
                                static_cast<unsigned long long>(lib_addr))),
            std::string::npos);
}

TEST(SharedObject, TrampolineSectionsDoNotCollide) {
  const InstrumentResult lib_hard = Harden(BuildLibrary(), kLibTrampBase);
  const InstrumentResult main_hard = Harden(BuildMain(), kTrampolineBase);
  const Section* lt = lib_hard.image.FindSection(Section::Kind::kTrampoline);
  const Section* mt = main_hard.image.FindSection(Section::Kind::kTrampoline);
  ASSERT_NE(lt, nullptr);
  ASSERT_NE(mt, nullptr);
  EXPECT_TRUE(lt->end_vaddr() <= mt->vaddr || mt->end_vaddr() <= lt->vaddr);
}

}  // namespace
}  // namespace redfat
