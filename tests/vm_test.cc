#include <gtest/gtest.h>

#include "src/heap/legacy_heap.h"
#include "src/vm/vm.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

RunResult RunProgram(ProgramBuilder& pb, Vm& vm, GuestAllocator* alloc = nullptr,
                     std::vector<uint64_t> inputs = {}) {
  const BinaryImage img = pb.Finish();
  if (alloc != nullptr) {
    vm.set_allocator(alloc);
  }
  vm.set_inputs(std::move(inputs));
  vm.LoadImage(img);
  return vm.Run();
}

TEST(VmMemory, ReadWriteRoundTrip) {
  Memory mem;
  mem.Write(0x1000, 0x1122334455667788ULL, 8);
  EXPECT_EQ(mem.Read(0x1000, 8), 0x1122334455667788ULL);
  EXPECT_EQ(mem.Read(0x1000, 4), 0x55667788ULL);
  EXPECT_EQ(mem.Read(0x1000, 2), 0x7788ULL);
  EXPECT_EQ(mem.Read(0x1000, 1), 0x88ULL);
  EXPECT_EQ(mem.Read(0x1004, 4), 0x11223344ULL);
}

TEST(VmMemory, UntouchedReadsZero) {
  Memory mem;
  EXPECT_EQ(mem.Read(0xdeadbeef000ULL, 8), 0u);
  EXPECT_EQ(mem.TouchedPages(), 0u);
}

TEST(VmMemory, PageStraddle) {
  Memory mem;
  const uint64_t addr = Memory::kPageSize - 3;
  mem.Write(addr, 0xaabbccddeeff0011ULL, 8);
  EXPECT_EQ(mem.Read(addr, 8), 0xaabbccddeeff0011ULL);
  EXPECT_EQ(mem.TouchedPages(), 2u);
}

TEST(VmMemory, BytesAndFill) {
  Memory mem;
  const uint8_t in[5] = {1, 2, 3, 4, 5};
  mem.WriteBytes(Memory::kPageSize - 2, in, sizeof(in));
  uint8_t out[5] = {};
  mem.ReadBytes(Memory::kPageSize - 2, out, sizeof(out));
  EXPECT_EQ(0, memcmp(in, out, sizeof(in)));
  mem.Fill(0x2000, 0xab, 100);
  EXPECT_EQ(mem.Read(0x2000 + 99, 1), 0xabu);
  EXPECT_EQ(mem.Read(0x2000 + 100, 1), 0u);
}

TEST(VmMemory, ZeroFillDoesNotMaterializePages) {
  // memset(p, 0, n) over an untouched region must stay lazily unmapped:
  // untouched memory already reads as 0, so materializing every swept page
  // would inflate the touched_pages footprint proxy for no semantic gain.
  Memory mem;
  mem.Fill(0x40000, 0, 64 * Memory::kPageSize);
  EXPECT_EQ(mem.TouchedPages(), 0u);
  EXPECT_EQ(mem.Read(0x40000, 8), 0u);
  // Zero-filling a *present* page still clears it.
  mem.Write(0x40000, 0x1122334455667788ULL, 8);
  EXPECT_EQ(mem.TouchedPages(), 1u);
  mem.Fill(0x40000, 0, 64 * Memory::kPageSize);
  EXPECT_EQ(mem.TouchedPages(), 1u);
  EXPECT_EQ(mem.Read(0x40000, 8), 0u);
  // Nonzero fills materialize as before.
  mem.Fill(0x80000, 0x5a, 3 * Memory::kPageSize);
  EXPECT_EQ(mem.TouchedPages(), 4u);
  EXPECT_EQ(mem.Read(0x80000 + 2 * Memory::kPageSize, 1), 0x5au);
}

TEST(VmExec, ArithmeticAndExit) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 40);
  as.AddI(Reg::kRax, 2);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kExit);
  Vm vm;
  const RunResult r = RunProgram(pb, vm);
  EXPECT_EQ(r.reason, HaltReason::kExit);
  EXPECT_EQ(r.exit_status, 42u);
}

TEST(VmExec, FlagsAndConditions) {
  // Computes: 5 < 7 (unsigned), -1 < 0 (signed), -1 > 0 (unsigned).
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fail = as.NewLabel();
  as.MovRI(Reg::kRax, 5);
  as.CmpI(Reg::kRax, 7);
  as.Jcc(Cond::kUge, fail);
  as.MovRI(Reg::kRax, static_cast<uint64_t>(-1));
  as.CmpI(Reg::kRax, 0);
  as.Jcc(Cond::kSge, fail);  // signed: -1 < 0
  as.Jcc(Cond::kUle, fail);  // unsigned: max > 0
  pb.EmitExit(0);
  as.Bind(fail);
  pb.EmitExit(1);
  Vm vm;
  EXPECT_EQ(RunProgram(pb, vm).exit_status, 0u);
}

TEST(VmExec, OverflowFlagSignedComparisons) {
  // INT64_MIN < 1 signed, but comparing them trips OF; Jcc must honor it.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fail = as.NewLabel();
  as.MovRI(Reg::kRbx, static_cast<uint64_t>(INT64_MIN));
  as.CmpI(Reg::kRbx, 1);
  as.Jcc(Cond::kSge, fail);
  pb.EmitExit(0);
  as.Bind(fail);
  pb.EmitExit(1);
  Vm vm;
  EXPECT_EQ(RunProgram(pb, vm).exit_status, 0u);
}

TEST(VmExec, LoadStoreSizes) {
  ProgramBuilder pb;
  const uint64_t buf = pb.AddZeroData(16);
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 0x1234567890abcdefULL);
  as.MovRI(Reg::kRbx, buf);
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0, 2));           // 4-byte store
  as.Load(Reg::kRcx, MemAt(Reg::kRbx, 0, 3));            // 8-byte load
  as.MovRR(Reg::kRdi, Reg::kRcx);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  RunProgram(pb, vm);
  ASSERT_EQ(vm.outputs().size(), 1u);
  EXPECT_EQ(vm.outputs()[0], 0x90abcdefULL);  // zero-extended 4 bytes
}

TEST(VmExec, IndexedAddressing) {
  ProgramBuilder pb;
  const uint64_t arr = pb.AddDataU64({10, 20, 30, 40});
  Assembler& as = pb.text();
  as.MovRI(Reg::kRbx, arr);
  as.MovRI(Reg::kRcx, 2);
  as.Load(Reg::kRdi, MemBIS(Reg::kRbx, Reg::kRcx, 3, 8));  // arr[2+1]
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  RunProgram(pb, vm);
  ASSERT_EQ(vm.outputs().size(), 1u);
  EXPECT_EQ(vm.outputs()[0], 40u);
}

TEST(VmExec, RipRelativeLea) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  // lea rax, [rip + 0] -> address of next instruction.
  as.Lea(Reg::kRax, MemAt(Reg::kRip, 0));
  const uint64_t expect = as.Here();
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  RunProgram(pb, vm);
  ASSERT_EQ(vm.outputs().size(), 1u);
  EXPECT_EQ(vm.outputs()[0], expect);
}

TEST(VmExec, CallRetAndStack) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fn = as.NewLabel();
  as.MovRI(Reg::kRax, 1);
  as.Call(fn);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kExit);
  as.Bind(fn);
  as.AddI(Reg::kRax, 10);
  as.Ret();
  Vm vm;
  EXPECT_EQ(RunProgram(pb, vm).exit_status, 11u);
}

TEST(VmExec, IndirectCallThroughTable) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fn = as.NewLabel();
  auto main_start = as.NewLabel();
  as.Jmp(main_start);
  as.Bind(fn);
  as.MovRI(Reg::kRax, 77);
  as.Ret();
  as.Bind(main_start);
  as.MovLabelAddr(Reg::kR11, fn);
  as.CallR(Reg::kR11);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kExit);
  Vm vm;
  EXPECT_EQ(RunProgram(pb, vm).exit_status, 77u);
}

TEST(VmExec, PushPopPushfPopf) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fail = as.NewLabel();
  as.MovRI(Reg::kRax, 123);
  as.Push(Reg::kRax);
  as.MovRI(Reg::kRax, 0);
  as.CmpI(Reg::kRax, 0);  // ZF set
  as.Pushf();
  as.MovRI(Reg::kRbx, 1);
  as.CmpI(Reg::kRbx, 99);  // clobber flags (ZF clear)
  as.Popf();
  as.Jcc(Cond::kNe, fail);  // must see restored ZF
  as.Pop(Reg::kRcx);
  as.CmpI(Reg::kRcx, 123);
  as.Jcc(Cond::kNe, fail);
  pb.EmitExit(0);
  as.Bind(fail);
  pb.EmitExit(1);
  Vm vm;
  EXPECT_EQ(RunProgram(pb, vm).exit_status, 0u);
}

TEST(VmExec, MulhMatchesHost) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  const uint64_t a = 0x123456789abcdef0ULL;
  const uint64_t b = 0xfedcba9876543210ULL;
  as.MovRI(Reg::kRax, a);
  as.MovRI(Reg::kRbx, b);
  as.Mulh(Reg::kRax, Reg::kRbx);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  RunProgram(pb, vm);
  const uint64_t expect =
      static_cast<uint64_t>((static_cast<unsigned __int128>(a) * b) >> 64);
  EXPECT_EQ(vm.outputs()[0], expect);
}

TEST(VmExec, ShiftSemantics) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 0xffffffff00000001ULL);
  as.ShlI(Reg::kRax, 32);
  as.ShrI(Reg::kRax, 32);  // zext32
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  as.MovRI(Reg::kRbx, static_cast<uint64_t>(-16));
  as.SarI(Reg::kRbx, 2);
  as.MovRR(Reg::kRdi, Reg::kRbx);
  as.HostCall(HostFn::kOutputU64);
  as.MovRI(Reg::kRcx, 5);
  as.MovRI(Reg::kRdx, 1);
  as.Shl(Reg::kRdx, Reg::kRcx);
  as.MovRR(Reg::kRdi, Reg::kRdx);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  RunProgram(pb, vm);
  ASSERT_EQ(vm.outputs().size(), 3u);
  EXPECT_EQ(vm.outputs()[0], 1u);
  EXPECT_EQ(vm.outputs()[1], static_cast<uint64_t>(-4));
  EXPECT_EQ(vm.outputs()[2], 32u);
}

TEST(VmExec, HostMallocFreeMemsetMemcpy) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR8, Reg::kRax);  // p
  as.MovRR(Reg::kRdi, Reg::kR8);
  as.MovRI(Reg::kRsi, 0x5a);
  as.MovRI(Reg::kRdx, 64);
  as.HostCall(HostFn::kMemset);
  as.Load(Reg::kRdi, MemAt(Reg::kR8, 0));
  as.HostCall(HostFn::kOutputU64);
  as.MovRR(Reg::kRdi, Reg::kR8);
  as.HostCall(HostFn::kFree);
  pb.EmitExit(0);
  Vm vm;
  GlibcLikeAllocator alloc;
  const RunResult r = RunProgram(pb, vm, &alloc);
  EXPECT_EQ(r.reason, HaltReason::kExit);
  ASSERT_EQ(vm.outputs().size(), 1u);
  EXPECT_EQ(vm.outputs()[0], 0x5a5a5a5a5a5a5a5aULL);
}

TEST(VmExec, InputsAndRand) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.HostCall(HostFn::kInputU64);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  as.HostCall(HostFn::kInputU64);  // exhausted -> 0
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  as.HostCall(HostFn::kRandU64);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  Vm vm;
  vm.set_rng_seed(42);
  RunProgram(pb, vm, nullptr, {555});
  ASSERT_EQ(vm.outputs().size(), 3u);
  EXPECT_EQ(vm.outputs()[0], 555u);
  EXPECT_EQ(vm.outputs()[1], 0u);
  EXPECT_EQ(vm.outputs()[2], Rng(42).Next());
}

TEST(VmExec, TrapMemErrorHardenAborts) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Trap(TrapCode::kMemError, PackErrorArg(7, ErrorKind::kBounds));
  pb.EmitExit(0);
  Vm vm;
  vm.set_policy(Policy::kHarden);
  const RunResult r = RunProgram(pb, vm);
  EXPECT_EQ(r.reason, HaltReason::kMemErrorAbort);
  ASSERT_EQ(vm.mem_errors().size(), 1u);
  EXPECT_EQ(vm.mem_errors()[0].site, 7u);
  EXPECT_EQ(vm.mem_errors()[0].kind, ErrorKind::kBounds);
}

TEST(VmExec, TrapMemErrorLogContinues) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Trap(TrapCode::kMemError, PackErrorArg(3, ErrorKind::kUaf));
  pb.EmitExit(9);
  Vm vm;
  vm.set_policy(Policy::kLog);
  const RunResult r = RunProgram(pb, vm);
  EXPECT_EQ(r.reason, HaltReason::kExit);
  EXPECT_EQ(r.exit_status, 9u);
  EXPECT_EQ(vm.mem_errors().size(), 1u);
}

TEST(VmExec, ProfTrapsAndCounters) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Trap(TrapCode::kProfPass, 5);
  as.Trap(TrapCode::kProfPass, 5);
  as.Trap(TrapCode::kProfFail, 5);
  as.Count(11);
  as.Count(11);
  pb.EmitExit(0);
  Vm vm;
  RunProgram(pb, vm);
  EXPECT_EQ(vm.prof_counts().at(5).passes, 2u);
  EXPECT_EQ(vm.prof_counts().at(5).fails, 1u);
  EXPECT_EQ(vm.counters().at(11), 2u);
}

TEST(VmExec, CountCostsNothing) {
  ProgramBuilder pb1, pb2;
  pb1.text().MovRI(Reg::kRax, 1);
  pb1.EmitExit(0);
  pb2.text().MovRI(Reg::kRax, 1);
  pb2.text().Count(1);
  pb2.text().Count(2);
  pb2.EmitExit(0);
  Vm vm1, vm2;
  const RunResult r1 = RunProgram(pb1, vm1);
  const RunResult r2 = RunProgram(pb2, vm2);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r2.instructions, r1.instructions + 2);
}

TEST(VmExec, Ud2Faults) {
  ProgramBuilder pb;
  pb.text().Ud2();
  Vm vm;
  const RunResult r = RunProgram(pb, vm);
  EXPECT_EQ(r.reason, HaltReason::kFault);
}

TEST(VmExec, RunawayIntoZeroMemoryFaults) {
  ProgramBuilder pb;
  pb.text().Nop();  // falls off the end into zeroed memory
  Vm vm;
  const RunResult r = RunProgram(pb, vm);
  EXPECT_EQ(r.reason, HaltReason::kFault);
}

TEST(VmExec, InstructionLimit) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto loop = as.NewLabel();
  as.Bind(loop);
  as.Jmp(loop);
  Vm vm;
  vm.set_instruction_limit(1000);
  const RunResult r = RunProgram(pb, vm);
  EXPECT_EQ(r.reason, HaltReason::kInstrLimit);
  EXPECT_EQ(r.instructions, 1000u);
}

TEST(VmExec, ExplicitMemOpCounting) {
  ProgramBuilder pb;
  const uint64_t buf = pb.AddZeroData(8);
  Assembler& as = pb.text();
  as.MovRI(Reg::kRbx, buf);
  as.Load(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.StoreI(MemAt(Reg::kRbx, 0), 5);
  as.Push(Reg::kRax);  // stack traffic is not an explicit memory operand
  as.Pop(Reg::kRax);
  pb.EmitExit(0);
  Vm vm;
  const RunResult r = RunProgram(pb, vm);
  EXPECT_EQ(r.explicit_reads, 1u);
  EXPECT_EQ(r.explicit_writes, 2u);
}

}  // namespace
}  // namespace redfat
