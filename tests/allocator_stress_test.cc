// Adversarial allocator stress: long random alloc/free interleavings with a
// host-side model of the live set, verifying the low-fat invariants, the
// redzone wrapper's metadata, quarantine behaviour, and fallback boundaries.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/heap/shadow_allocator.h"
#include "src/support/rng.h"

namespace redfat {
namespace {

TEST(LowFatStress, LiveSlotsNeverOverlap) {
  LowFatHeap heap(8);
  Rng rng(0x57e55);
  std::map<uint64_t, uint64_t> live;  // slot -> slot end
  for (int i = 0; i < 20000; ++i) {
    if (live.empty() || rng.Chance(3, 5)) {
      const uint64_t want =
          rng.Chance(1, 10) ? rng.Range(513, 64 << 10) : rng.Range(1, 512);
      const uint64_t slot = heap.Alloc(want);
      ASSERT_NE(slot, 0u);
      const uint64_t size = LowFatSize(slot);
      ASSERT_GE(size, want);
      // No overlap with any live slot.
      auto next = live.lower_bound(slot);
      if (next != live.end()) {
        ASSERT_LE(slot + size, next->first);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->second, slot);
      }
      live[slot] = slot + size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      heap.Free(it->first);
      live.erase(it);
    }
  }
  EXPECT_EQ(heap.stats().live_slots, live.size());
}

TEST(LowFatStress, QuarantineNeverHandsBackRecentFrees) {
  constexpr unsigned kQuarantine = 16;
  LowFatHeap heap(kQuarantine);
  Rng rng(0xdead);
  std::vector<uint64_t> recent;  // last kQuarantine frees
  for (int i = 0; i < 5000; ++i) {
    const uint64_t slot = heap.Alloc(48);
    for (uint64_t r : recent) {
      ASSERT_NE(slot, r) << "slot reused while quarantined";
    }
    if (rng.Chance(4, 5)) {
      heap.Free(slot);
      recent.push_back(slot);
      if (recent.size() > kQuarantine) {
        recent.erase(recent.begin());
      }
    }
  }
}

TEST(RedFatAllocatorStress, MetadataAlwaysTracksLiveSet) {
  Memory mem;
  RedFatAllocator alloc;
  Rng rng(0xa110c);
  std::map<uint64_t, uint64_t> live;  // ptr -> size
  for (int i = 0; i < 10000; ++i) {
    if (live.empty() || rng.Chance(3, 5)) {
      const uint64_t size = rng.Range(1, 2000);
      const uint64_t p = alloc.Malloc(mem, size).ptr;
      ASSERT_NE(p, 0u);
      live[p] = size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      alloc.Free(mem, it->first);
      ASSERT_EQ(mem.ReadU64(it->first - kRedzoneSize), 0u) << "freed metadata";
      live.erase(it);
    }
    // Every live object's metadata equals its malloc size.
    if (i % 500 == 0) {
      for (const auto& [p, size] : live) {
        ASSERT_EQ(mem.ReadU64(p - kRedzoneSize), size);
      }
    }
  }
}

TEST(RedFatAllocatorStress, FallbackBoundary) {
  Memory mem;
  RedFatAllocator alloc;
  // Largest low-fat-servable payload: kMaxLowFatSize - 16.
  const uint64_t p1 = alloc.Malloc(mem, kMaxLowFatSize - kRedzoneSize).ptr;
  ASSERT_NE(p1, 0u);
  EXPECT_NE(LowFatSize(p1), 0u);
  EXPECT_EQ(alloc.fallback_allocs(), 0u);
  // One byte more: legacy fallback, non-fat.
  const uint64_t p2 = alloc.Malloc(mem, kMaxLowFatSize - kRedzoneSize + 1).ptr;
  ASSERT_NE(p2, 0u);
  EXPECT_EQ(LowFatSize(p2), 0u);
  EXPECT_EQ(alloc.fallback_allocs(), 1u);
  alloc.Free(mem, p1);
  alloc.Free(mem, p2);
}

TEST(RedFatAllocatorStress, ZeroByteMalloc) {
  Memory mem;
  RedFatAllocator alloc;
  const uint64_t p = alloc.Malloc(mem, 0).ptr;
  ASSERT_NE(p, 0u);
  EXPECT_EQ(mem.ReadU64(p - kRedzoneSize), 0u) << "SIZE 0 stored...";
  // ...which doubles as the Free encoding: any dereference of a zero-byte
  // object is out of bounds by definition, exactly what the check enforces.
  alloc.Free(mem, p);
}

TEST(LegacyHeapStress, ChunkReuseRespectsSizeBuckets) {
  Memory mem;
  LegacyHeap heap;
  Rng rng(0x1e6ac);
  std::map<uint64_t, uint64_t> live;
  for (int i = 0; i < 8000; ++i) {
    if (live.empty() || rng.Chance(1, 2)) {
      const uint64_t size = rng.Range(1, 4096);
      const uint64_t p = heap.Alloc(mem, size);
      ASSERT_NE(p, 0u);
      ASSERT_EQ(p % 16, 0u);
      ASSERT_TRUE(heap.IsLive(p));
      auto next = live.lower_bound(p);
      if (next != live.end()) {
        ASSERT_LE(p + size, next->first) << "payload overlaps next chunk";
      }
      live[p] = size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      heap.Free(it->first);
      live.erase(it);
    }
  }
}

TEST(ShadowAllocatorStress, ShadowConsistentWithLiveSet) {
  Memory mem;
  ShadowRedFatAllocator alloc;
  Rng rng(0x5ade);
  std::map<uint64_t, uint64_t> live;
  auto shadow_at = [&](uint64_t a) { return mem.Read(kGuestShadowBase + (a >> 3), 1); };
  for (int i = 0; i < 4000; ++i) {
    if (live.empty() || rng.Chance(3, 5)) {
      const uint64_t size = rng.Range(8, 512) & ~7ull;  // granule-aligned
      const uint64_t p = alloc.Malloc(mem, size).ptr;
      ASSERT_NE(p, 0u);
      live[p] = size;
      ASSERT_EQ(shadow_at(p), 0u);
      ASSERT_EQ(shadow_at(p + size - 1), 0u);
      ASSERT_EQ(shadow_at(p - 8), static_cast<uint64_t>(GuestShadow::kRedzone));
      ASSERT_EQ(shadow_at(p + size), static_cast<uint64_t>(GuestShadow::kRedzone));
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      alloc.Free(mem, it->first);
      ASSERT_EQ(shadow_at(it->first), static_cast<uint64_t>(GuestShadow::kFreed));
      live.erase(it);
    }
  }
}

}  // namespace
}  // namespace redfat
