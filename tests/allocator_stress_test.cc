// Adversarial allocator stress: long random alloc/free interleavings with a
// host-side model of the live set, verifying the low-fat invariants, the
// redzone wrapper's metadata, quarantine behaviour, fallback boundaries, and
// the rheap hardening features under direct attack (forged freelist links,
// overlapping frees, quarantine bypass) — host-side and end-to-end through
// the churn workload.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/core/forensics_report.h"
#include "src/core/harness.h"
#include "src/core/policy.h"
#include "src/core/redfat.h"
#include "src/heap/forensics.h"
#include "src/heap/legacy_heap.h"
#include "src/heap/lowfat.h"
#include "src/heap/redfat_allocator.h"
#include "src/heap/shadow_allocator.h"
#include "src/support/rng.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

TEST(LowFatStress, LiveSlotsNeverOverlap) {
  Memory mem;
  LowFatHeap heap(8);
  Rng rng(0x57e55);
  std::map<uint64_t, uint64_t> live;  // slot -> slot end
  for (int i = 0; i < 20000; ++i) {
    if (live.empty() || rng.Chance(3, 5)) {
      const uint64_t want =
          rng.Chance(1, 10) ? rng.Range(513, 64 << 10) : rng.Range(1, 512);
      const uint64_t slot = heap.Alloc(mem, want).slot;
      ASSERT_NE(slot, 0u);
      const uint64_t size = LowFatSize(slot);
      ASSERT_GE(size, want);
      // No overlap with any live slot.
      auto next = live.lower_bound(slot);
      if (next != live.end()) {
        ASSERT_LE(slot + size, next->first);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->second, slot);
      }
      live[slot] = slot + size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      heap.Free(mem, it->first);
      live.erase(it);
    }
  }
  EXPECT_EQ(heap.stats().live_slots, live.size());
}

TEST(LowFatStress, QuarantineNeverHandsBackRecentFrees) {
  constexpr unsigned kQuarantine = 16;
  Memory mem;
  LowFatHeap heap(kQuarantine);
  Rng rng(0xdead);
  std::vector<uint64_t> recent;  // last kQuarantine frees
  for (int i = 0; i < 5000; ++i) {
    const uint64_t slot = heap.Alloc(mem, 48).slot;
    for (uint64_t r : recent) {
      ASSERT_NE(slot, r) << "slot reused while quarantined";
    }
    if (rng.Chance(4, 5)) {
      heap.Free(mem, slot);
      recent.push_back(slot);
      if (recent.size() > kQuarantine) {
        recent.erase(recent.begin());
      }
    }
  }
}

TEST(RedFatAllocatorStress, MetadataAlwaysTracksLiveSet) {
  Memory mem;
  RedFatAllocator alloc;
  Rng rng(0xa110c);
  std::map<uint64_t, uint64_t> live;  // ptr -> size
  for (int i = 0; i < 10000; ++i) {
    if (live.empty() || rng.Chance(3, 5)) {
      const uint64_t size = rng.Range(1, 2000);
      const uint64_t p = alloc.Malloc(mem, size).ptr;
      ASSERT_NE(p, 0u);
      live[p] = size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      alloc.Free(mem, it->first);
      ASSERT_EQ(mem.ReadU64(it->first - kRedzoneSize), 0u) << "freed metadata";
      live.erase(it);
    }
    // Every live object's metadata equals its malloc size.
    if (i % 500 == 0) {
      for (const auto& [p, size] : live) {
        ASSERT_EQ(mem.ReadU64(p - kRedzoneSize), size);
      }
    }
  }
}

TEST(RedFatAllocatorStress, FallbackBoundary) {
  Memory mem;
  RedFatAllocator alloc;
  // Largest low-fat-servable payload: kMaxLowFatSize - 16.
  const uint64_t p1 = alloc.Malloc(mem, kMaxLowFatSize - kRedzoneSize).ptr;
  ASSERT_NE(p1, 0u);
  EXPECT_NE(LowFatSize(p1), 0u);
  EXPECT_EQ(alloc.fallback_allocs(), 0u);
  // One byte more: legacy fallback, non-fat.
  const uint64_t p2 = alloc.Malloc(mem, kMaxLowFatSize - kRedzoneSize + 1).ptr;
  ASSERT_NE(p2, 0u);
  EXPECT_EQ(LowFatSize(p2), 0u);
  EXPECT_EQ(alloc.fallback_allocs(), 1u);
  alloc.Free(mem, p1);
  alloc.Free(mem, p2);
}

TEST(RedFatAllocatorStress, ZeroByteMalloc) {
  Memory mem;
  RedFatAllocator alloc;
  const uint64_t p = alloc.Malloc(mem, 0).ptr;
  ASSERT_NE(p, 0u);
  EXPECT_EQ(mem.ReadU64(p - kRedzoneSize), 0u) << "SIZE 0 stored...";
  // ...which doubles as the Free encoding: any dereference of a zero-byte
  // object is out of bounds by definition, exactly what the check enforces.
  alloc.Free(mem, p);
}

TEST(LegacyHeapStress, ChunkReuseRespectsSizeBuckets) {
  Memory mem;
  LegacyHeap heap;
  Rng rng(0x1e6ac);
  std::map<uint64_t, uint64_t> live;
  for (int i = 0; i < 8000; ++i) {
    if (live.empty() || rng.Chance(1, 2)) {
      const uint64_t size = rng.Range(1, 4096);
      const uint64_t p = heap.Alloc(mem, size);
      ASSERT_NE(p, 0u);
      ASSERT_EQ(p % 16, 0u);
      ASSERT_TRUE(heap.IsLive(p));
      auto next = live.lower_bound(p);
      if (next != live.end()) {
        ASSERT_LE(p + size, next->first) << "payload overlaps next chunk";
      }
      live[p] = size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      heap.Free(it->first);
      live.erase(it);
    }
  }
}

// --- rheap hardening features under direct attack ---------------------------

RheapOptions ProtOnly() {
  RheapOptions o;
  o.prot_freelist = true;
  o.quarantine_slots = 0;
  return o;
}

TEST(RheapHardened, ForgedFreelistLinkDetectedOnPop) {
  Memory mem;
  LowFatHeap heap(ProtOnly());
  const uint64_t a = heap.Alloc(mem, 48).slot;
  const uint64_t b = heap.Alloc(mem, 48).slot;
  heap.Free(mem, a);
  heap.Free(mem, b);  // LIFO head: b, link[b] = Enc(a)
  // The attack: scribble over the head slot's in-guest link word.
  mem.WriteU64(b + 8, 0x4141414141414141ULL);
  const LowFatAllocResult r = heap.Alloc(mem, 48);
  EXPECT_TRUE(r.corrupted);
  EXPECT_EQ(r.corrupt_addr, b + 8);
  EXPECT_EQ(heap.stats().corruptions, 1u);
  // The allocation still succeeds — served from the bump arena, never from
  // the poisoned chain.
  ASSERT_NE(r.slot, 0u);
  EXPECT_NE(r.slot, a);
  EXPECT_NE(r.slot, b);
  // The discarded chain never re-enters circulation.
  for (int i = 0; i < 8; ++i) {
    const LowFatAllocResult again = heap.Alloc(mem, 48);
    EXPECT_FALSE(again.corrupted);
    EXPECT_NE(again.slot, a);
    EXPECT_NE(again.slot, b);
  }
}

TEST(RheapHardened, ForgedLinkHijacksAllocationWithoutProt) {
  // The contrast case motivating prot-freelist: with the feature off the
  // same scribble hands the attacker an arbitrary allocation address.
  RheapOptions off;
  off.quarantine_slots = 0;
  Memory mem;
  LowFatHeap heap(off);
  const uint64_t a = heap.Alloc(mem, 48).slot;
  const uint64_t b = heap.Alloc(mem, 48).slot;
  heap.Free(mem, a);
  heap.Free(mem, b);
  const uint64_t forged = 0x4141414141414140ULL;
  mem.WriteU64(b + 8, forged);
  const LowFatAllocResult r1 = heap.Alloc(mem, 48);
  EXPECT_FALSE(r1.corrupted);
  EXPECT_EQ(r1.slot, b);
  const LowFatAllocResult r2 = heap.Alloc(mem, 48);
  EXPECT_EQ(r2.slot, forged) << "unprotected freelists follow forged links";
}

TEST(RheapHardened, OverlappingFreeDiagnosedUnderProt) {
  Memory mem;
  RedFatAllocator alloc(ProtOnly());
  const uint64_t p = alloc.Malloc(mem, 100).ptr;
  ASSERT_NE(p, 0u);
  const FreeOutcome bad = alloc.Free(mem, p + 8);  // interior pointer
  EXPECT_TRUE(bad.corrupted);
  EXPECT_EQ(bad.corrupt_kind, ErrorKind::kFreelistCorruption);
  EXPECT_EQ(bad.corrupt_addr, p + 8);
  // The bogus pointer was never pushed: metadata intact, object still live
  // and cleanly freeable.
  EXPECT_EQ(mem.ReadU64(p - kRedzoneSize), 100u);
  EXPECT_FALSE(alloc.Free(mem, p).corrupted);
}

TEST(RheapHardened, OverlappingFreeSilentlyDroppedWithoutProt) {
  // Without prot-freelist the interior free must still never corrupt the
  // freelist (that is how cycles are forged) — it is just not diagnosed.
  Memory mem;
  RedFatAllocator alloc{RheapOptions{}};
  const uint64_t p = alloc.Malloc(mem, 100).ptr;
  const FreeOutcome out = alloc.Free(mem, p + 8);
  EXPECT_FALSE(out.corrupted);
  EXPECT_EQ(mem.ReadU64(p - kRedzoneSize), 100u) << "drop, not push";
  EXPECT_FALSE(alloc.Free(mem, p).corrupted);
}

TEST(RheapHardened, DoubleFreeDiagnosed) {
  RheapOptions o;
  o.prot_freelist = true;  // default quarantine depth
  Memory mem;
  RedFatAllocator alloc(o);
  const uint64_t p = alloc.Malloc(mem, 64).ptr;
  EXPECT_FALSE(alloc.Free(mem, p).corrupted);
  const FreeOutcome second = alloc.Free(mem, p);
  EXPECT_TRUE(second.corrupted);
  EXPECT_EQ(second.corrupt_kind, ErrorKind::kDoubleFree);
  EXPECT_EQ(second.corrupt_addr, p);
}

TEST(RheapHardened, QuarantineBypassDetectedOnDrain) {
  RheapOptions o;
  o.prot_freelist = true;
  o.quarantine_slots = 2;
  Memory mem;
  LowFatHeap heap(o);
  uint64_t s[4];
  for (uint64_t& slot : s) {
    slot = heap.Alloc(mem, 48).slot;
  }
  heap.Free(mem, s[0]);  // FIFO: s0
  heap.Free(mem, s[1]);  // FIFO: s0 -> s1, link[s0] = Enc(s1)
  // Quarantine-bypass attempt: rewrite the oldest entry's chain link.
  mem.WriteU64(s[0] + 8, 0xdeadbeefULL);
  const LowFatFreeResult r = heap.Free(mem, s[2]);  // depth 3 > 2: drains s0
  EXPECT_TRUE(r.corrupted);
  EXPECT_EQ(r.corrupt_addr, s[0] + 8);
  EXPECT_EQ(heap.stats().corruptions, 1u);
  // The whole tainted chain was discarded; nothing on it is ever reissued.
  EXPECT_FALSE(heap.Free(mem, s[3]).corrupted);
  for (int i = 0; i < 8; ++i) {
    const uint64_t got = heap.Alloc(mem, 48).slot;
    EXPECT_NE(got, s[0]);
    EXPECT_NE(got, s[1]);
    EXPECT_NE(got, s[2]);
  }
}

TEST(RheapHardened, ProtFreelistNeverChangesPlacement) {
  // prot-freelist only re-encodes link words; the allocation sequence must
  // be slot-identical to the features-off heap under any interleaving.
  RheapOptions off;
  off.quarantine_slots = 8;
  RheapOptions prot = off;
  prot.prot_freelist = true;
  Memory m1, m2;
  LowFatHeap h1(off), h2(prot);
  Rng rng(0xcafe);
  std::vector<uint64_t> live1, live2;
  for (int i = 0; i < 4000; ++i) {
    if (live1.empty() || rng.Chance(3, 5)) {
      const uint64_t want = rng.Range(1, 2048);
      const uint64_t a = h1.Alloc(m1, want).slot;
      const uint64_t b = h2.Alloc(m2, want).slot;
      ASSERT_EQ(a, b) << "op " << i;
      live1.push_back(a);
      live2.push_back(b);
    } else {
      const size_t k = rng.Below(live1.size());
      h1.Free(m1, live1[k]);
      h2.Free(m2, live2[k]);
      live1.erase(live1.begin() + static_cast<long>(k));
      live2.erase(live2.begin() + static_cast<long>(k));
    }
  }
}

// --- churn workload end-to-end ----------------------------------------------

InstrumentResult InstrumentDefault(const BinaryImage& img) {
  RedFatTool tool{RedFatOptions{}};
  Result<InstrumentResult> r = tool.Instrument(img);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return std::move(r).value();
}

TEST(ChurnWorkload, ChecksumIndependentOfAllocatorAndFeatures) {
  // The churn checksum hashes only guest-written header words, so it is the
  // allocator-independence witness: baseline glibc-like, features-off
  // libredfat and every-feature-on libredfat must all print the same value.
  ChurnParams p;
  p.seed = 9;
  const BinaryImage img = GenerateChurnProgram(p);
  RunConfig cfg;
  cfg.inputs = {400, 0};
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  ASSERT_EQ(base.result.reason, HaltReason::kExit) << base.result.fault_message;
  ASSERT_EQ(base.outputs.size(), 1u);

  const InstrumentResult ir = InstrumentDefault(img);
  const RunOutcome off = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(off.result.reason, HaltReason::kExit) << off.result.fault_message;
  EXPECT_EQ(off.outputs, base.outputs);

  RunConfig all = cfg;
  all.rheap.prot_freelist = true;
  all.rheap.guard_memcpy = true;
  all.rheap.random = true;
  all.rheap.quarantine_slots = 64;
  const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFat, all);
  EXPECT_EQ(hard.result.reason, HaltReason::kExit) << hard.result.fault_message;
  EXPECT_EQ(hard.outputs, base.outputs);
  EXPECT_TRUE(hard.errors.empty());
}

TEST(ChurnWorkload, ImageBytesIndependentOfRheapFeatures) {
  // --rheap is a runtime binding, never an instrumentation knob: rewriting
  // under an explicit feature list must produce byte-identical code. Only
  // the provenance (and hence the sitemap header) differs.
  ChurnParams p;
  const BinaryImage img = GenerateChurnProgram(p);
  HardeningPolicy plain;
  plain.tier = HardenTier::kFast;
  HardeningPolicy listed;
  listed.tier = HardenTier::kFast;
  listed.rheap =
      ParseRheapList("prot-freelist,guard-memcpy,random,quarantine=16").value();
  const InstrumentResult a = RedFatTool(plain.Resolve().value()).Instrument(img).value();
  const InstrumentResult b = RedFatTool(listed.Resolve().value()).Instrument(img).value();
  EXPECT_EQ(a.image.Serialize(), b.image.Serialize());
  EXPECT_FALSE(a.rheap_explicit);
  ASSERT_TRUE(b.rheap_explicit);
  EXPECT_EQ(b.rheap, *listed.rheap);
}

TEST(ChurnWorkload, ForgedLinkRunAbortsWithFreedProvenance) {
  // The attack runs UNinstrumented under the redfat runtime: prot-freelist
  // is the allocator's own last line of defense for stores no rewriter
  // check intercepted. (Instrumented, the forging store itself is caught as
  // a plain OOB — see InstrumentedChecksCatchTheForgingStoreFirst.)
  ChurnParams p;
  p.seed = 5;
  const BinaryImage img = GenerateChurnProgram(p);
  ForensicRing ring;
  RunConfig cfg;
  cfg.inputs = {300, 1};  // bug tail: forge a freed slot's freelist link
  cfg.rheap.prot_freelist = true;
  cfg.rheap.quarantine_slots = 64;
  cfg.forensics = &ring;
  cfg.forensic_tier = "extensive";
  const RunOutcome out = RunImage(img, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_FALSE(out.errors.empty());
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kFreelistCorruption);
  ASSERT_EQ(out.outputs.size(), 1u) << "checksum is emitted before the tail";

  ASSERT_FALSE(out.forensic_reports.empty());
  const ForensicReport& fr = out.forensic_reports[0];
  EXPECT_NE(fr.description.find("freelist corruption"), std::string::npos)
      << fr.description;
  EXPECT_TRUE(fr.have_provenance);
  EXPECT_TRUE(fr.provenance_freed)
      << "the forged link word lives inside a freed object";
  const std::string json = ForensicReportsToJson(out.forensic_reports, ring);
  EXPECT_NE(json.find("\"kind\":\"freelist-corruption\""), std::string::npos) << json;
}

TEST(ChurnWorkload, ForgedLinkRunsToCompletionWithoutProt) {
  // Same attack, features off: no detection, but also no misbehaviour the
  // checksum can see — and the checksum matches the benign mode exactly.
  ChurnParams p;
  p.seed = 5;
  const BinaryImage img = GenerateChurnProgram(p);
  RunConfig benign;
  benign.inputs = {300, 0};
  RunConfig forged;
  forged.inputs = {300, 1};
  const RunOutcome b = RunImage(img, RuntimeKind::kRedFat, benign);
  const RunOutcome f = RunImage(img, RuntimeKind::kRedFat, forged);
  EXPECT_EQ(f.result.reason, HaltReason::kExit) << f.result.fault_message;
  EXPECT_TRUE(f.errors.empty());
  EXPECT_EQ(f.outputs, b.outputs);
}

TEST(ChurnWorkload, InstrumentedChecksCatchTheForgingStoreFirst) {
  // Defense in depth: when the binary IS instrumented, the forging store
  // into the freed slot's redzone is itself flagged as an OOB before the
  // freelist ever pops the forged link.
  ChurnParams p;
  p.seed = 5;
  const BinaryImage img = GenerateChurnProgram(p);
  const InstrumentResult ir = InstrumentDefault(img);
  RunConfig cfg;
  cfg.inputs = {300, 1};
  cfg.rheap.prot_freelist = true;
  cfg.rheap.quarantine_slots = 64;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_FALSE(out.errors.empty());
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kBounds);
}

TEST(ChurnWorkload, OverlappingFreeRunDetected) {
  ChurnParams p;
  p.seed = 11;
  const BinaryImage img = GenerateChurnProgram(p);
  const InstrumentResult ir = InstrumentDefault(img);
  RunConfig cfg;
  cfg.inputs = {200, 2};  // bug tail: free an interior pointer
  cfg.rheap.prot_freelist = true;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_FALSE(out.errors.empty());
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kFreelistCorruption);
}

TEST(ShadowAllocatorStress, ShadowConsistentWithLiveSet) {
  Memory mem;
  ShadowRedFatAllocator alloc;
  Rng rng(0x5ade);
  std::map<uint64_t, uint64_t> live;
  auto shadow_at = [&](uint64_t a) { return mem.Read(kGuestShadowBase + (a >> 3), 1); };
  for (int i = 0; i < 4000; ++i) {
    if (live.empty() || rng.Chance(3, 5)) {
      const uint64_t size = rng.Range(8, 512) & ~7ull;  // granule-aligned
      const uint64_t p = alloc.Malloc(mem, size).ptr;
      ASSERT_NE(p, 0u);
      live[p] = size;
      ASSERT_EQ(shadow_at(p), 0u);
      ASSERT_EQ(shadow_at(p + size - 1), 0u);
      ASSERT_EQ(shadow_at(p - 8), static_cast<uint64_t>(GuestShadow::kRedzone));
      ASSERT_EQ(shadow_at(p + size), static_cast<uint64_t>(GuestShadow::kRedzone));
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      alloc.Free(mem, it->first);
      ASSERT_EQ(shadow_at(it->first), static_cast<uint64_t>(GuestShadow::kFreed));
      live.erase(it);
    }
  }
}

}  // namespace
}  // namespace redfat
