// Assorted coverage: site-map round-trip & error symbolization, tool file
// I/O, and the quarantine window's effect on use-after-free detection.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/core/sitemap.h"
#include "src/tools/tool_io.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

TEST(SiteMap, RoundTrip) {
  std::vector<SiteRecord> sites = {
      {0, 0x400010, true, CheckKind::kFull},
      {1, 0x400020, false, CheckKind::kRedzoneOnly},
      {2, 0x400123, true, CheckKind::kRedzoneOnly},
  };
  const std::string text = SerializeSiteMap(sites);
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  Result<std::vector<SiteRecord>> back = ParseSiteMap(lines);
  ASSERT_TRUE(back.ok()) << back.error();
  ASSERT_EQ(back.value().size(), 3u);
  for (size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(back.value()[i].id, sites[i].id);
    EXPECT_EQ(back.value()[i].addr, sites[i].addr);
    EXPECT_EQ(back.value()[i].is_write, sites[i].is_write);
    EXPECT_EQ(back.value()[i].kind, sites[i].kind);
  }
}

TEST(SiteMap, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseSiteMap({"not a site line"}).ok());
  EXPECT_TRUE(ParseSiteMap({"# comment", ""}).ok());
}

TEST(SiteMap, DescribeError) {
  std::vector<SiteRecord> sites = {{0, 0x400010, true, CheckKind::kFull}};
  MemErrorReport e;
  e.site = 0;
  e.kind = ErrorKind::kBounds;
  EXPECT_EQ(DescribeError(e, &sites),
            "out-of-bounds write at 0x400010 (site 0, lowfat+redzone check)");
  e.kind = ErrorKind::kUaf;
  e.site = 9;  // out of table
  e.rip = 0xabc;
  EXPECT_EQ(DescribeError(e, &sites), "use-after-free at site 9 (rip=0xabc)");
  EXPECT_EQ(DescribeError(e, nullptr), "use-after-free at site 9 (rip=0xabc)");
}

TEST(ToolIo, FileRoundTripAndErrors) {
  const std::string path = ::testing::TempDir() + "/redfat_toolio_test.bin";
  const std::vector<uint8_t> payload = {1, 2, 3, 0, 255, 42};
  ASSERT_TRUE(WriteFileBytes(path, payload).ok());
  Result<std::vector<uint8_t>> back = ReadFileBytes(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), payload);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFileBytes(path).ok());
  EXPECT_FALSE(LoadImageFile("/nonexistent/zzz.rfbin").ok());

  ProgramBuilder pb;
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const std::string ipath = ::testing::TempDir() + "/redfat_toolio_test.rfbin";
  ASSERT_TRUE(SaveImageFile(ipath, img).ok());
  Result<BinaryImage> loaded = LoadImageFile(ipath);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Serialize(), img.Serialize());
  std::remove(ipath.c_str());
}

// The UAF detection window is the quarantine: once a freed slot is recycled
// and re-allocated, its metadata is valid again and the dangling access
// passes (the known limitation of object-state schemes). The program frees
// p, then churns input()-many same-class objects before dereferencing p.
TEST(QuarantineWindow, UafDetectedOnlyInsideWindow) {
  // free(p); allocate-and-hold n same-class objects; free them all (their
  // frees push p out of the n>64 quarantine); burst-allocate n+2 objects
  // (drains the free list and recycles p's slot); finally read through the
  // dangling p.
  ProgramBuilder pb;
  const uint64_t table = pb.AddZeroData(8 * 512);
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 32);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);  // p
  as.MovRR(Reg::kRdi, Reg::kR12);
  as.HostCall(HostFn::kFree);
  as.HostCall(HostFn::kInputU64);
  as.MovRR(Reg::kR14, Reg::kRax);  // n

  auto emit_loop = [&](auto body) {
    as.MovRI(Reg::kRbx, 0);
    auto head = as.NewLabel();
    auto end = as.NewLabel();
    as.Bind(head);
    as.Cmp(Reg::kRbx, Reg::kR14);
    as.Jcc(Cond::kUge, end);
    body();
    as.AddI(Reg::kRbx, 1);
    as.Jmp(head);
    as.Bind(end);
  };

  emit_loop([&] {  // allocate and hold
    as.MovRI(Reg::kRdi, 32);
    as.HostCall(HostFn::kMalloc);
    as.Store(Reg::kRax, MemBIS(Reg::kNone, Reg::kRbx, 3, static_cast<int32_t>(table)));
  });
  emit_loop([&] {  // free them all
    as.Load(Reg::kRdi, MemBIS(Reg::kNone, Reg::kRbx, 3, static_cast<int32_t>(table)));
    as.HostCall(HostFn::kFree);
  });
  as.AddI(Reg::kR14, 2);
  emit_loop([&] {  // drain burst (leaked on purpose)
    as.MovRI(Reg::kRdi, 32);
    as.HostCall(HostFn::kMalloc);
  });
  as.Load(Reg::kRax, MemAt(Reg::kR12, 0));  // dangling access
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();

  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(img).value();

  // Inside the default 64-slot quarantine: detected.
  RunConfig inside;
  inside.inputs = {5};
  EXPECT_EQ(RunImage(ir.image, RuntimeKind::kRedFat, inside).result.reason,
            HaltReason::kMemErrorAbort);

  // Far beyond the quarantine: p is recycled; the dangling read aliases the
  // fresh object and slips through — the documented limitation.
  RunConfig outside;
  outside.inputs = {200};
  EXPECT_EQ(RunImage(ir.image, RuntimeKind::kRedFat, outside).result.reason,
            HaltReason::kExit);
}

}  // namespace
}  // namespace redfat
