#include <gtest/gtest.h>

#include "src/isa/abi.h"
#include "src/support/bits.h"
#include "src/support/magic_div.h"
#include "src/support/result.h"
#include "src/support/rng.h"

namespace redfat {
namespace {

TEST(Bits, PowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 63));
  EXPECT_FALSE(IsPowerOfTwo((uint64_t{1} << 63) + 1));
}

TEST(Bits, Log2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 35), 35u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(48), 6u);
  EXPECT_EQ(CeilLog2(64), 6u);
}

TEST(Bits, Align) {
  EXPECT_EQ(AlignUp(0, 16), 0u);
  EXPECT_EQ(AlignUp(1, 16), 16u);
  EXPECT_EQ(AlignUp(16, 16), 16u);
  EXPECT_EQ(AlignUp(100, 48), 144u);
  EXPECT_EQ(AlignDown(100, 48), 96u);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(SignExtend(0xff, 8), -1);
  EXPECT_EQ(SignExtend(0x7f, 8), 127);
  EXPECT_EQ(SignExtend(0x80000000ull, 32), INT64_C(-2147483648));
  EXPECT_EQ(SignExtend(42, 64), 42);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  const uint64_t a1 = a.Next();
  EXPECT_EQ(a1, b.Next());
  EXPECT_NE(a1, c.Next());
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    const uint64_t v = rng.Range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = Error("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  Status s;
  EXPECT_TRUE(s.ok());
  Status e = Error("bad");
  EXPECT_FALSE(e.ok());
}

// Magic division must be exact over the whole guaranteed dividend range for
// every low-fat size class. Exhaustive checking is infeasible; probe the
// adversarial spots (just below/above multiples of d) plus random points.
class MagicDivClassTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MagicDivClassTest, ExactAroundMultiples) {
  const uint64_t d = SizeClassBytes(GetParam());
  ASSERT_GT(d, 0u);
  const MagicDiv m = ComputeMagicDiv(d);
  const uint64_t top = (uint64_t{1} << kMagicDividendBits) - 1;
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const uint64_t q = rng.Below(top / d);
    for (uint64_t n : {q * d, q * d + 1, q * d + d - 1, rng.Below(top)}) {
      ASSERT_EQ(ApplyMagicDiv(n, m), n / d) << "d=" << d << " n=" << n;
    }
  }
  // Boundary dividends.
  for (uint64_t n : {uint64_t{0}, uint64_t{1}, d - 1, d, d + 1, top - 1, top}) {
    ASSERT_EQ(ApplyMagicDiv(n, m), n / d) << "d=" << d << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizeClasses, MagicDivClassTest,
                         ::testing::Range(1u, kNumSizeClasses + 1));

TEST(MagicDiv, SmallAndAwkwardDivisors) {
  Rng rng(99);
  for (uint64_t d : {2ull, 3ull, 7ull, 10ull, 48ull, 1000ull, 4096ull, 1000003ull,
                     (1ull << 30) + 1}) {
    const MagicDiv m = ComputeMagicDiv(d);
    for (int i = 0; i < 500; ++i) {
      const uint64_t n = rng.Below(uint64_t{1} << kMagicDividendBits);
      ASSERT_EQ(ApplyMagicDiv(n, m), n / d) << "d=" << d << " n=" << n;
    }
  }
}

TEST(Abi, SizeClassTable) {
  EXPECT_EQ(SizeClassBytes(1), 16u);
  EXPECT_EQ(SizeClassBytes(2), 32u);
  EXPECT_EQ(SizeClassBytes(3), 48u);
  EXPECT_EQ(SizeClassBytes(32), 512u);
  EXPECT_EQ(SizeClassBytes(33), 1024u);
  EXPECT_EQ(SizeClassBytes(kNumSizeClasses), kMaxLowFatSize);
  EXPECT_EQ(SizeClassBytes(0), 0u);
  EXPECT_EQ(SizeClassBytes(kNumSizeClasses + 1), 0u);
}

TEST(Abi, LayoutInvariants) {
  // The stack and code must sit at least 2 GiB below the first low-fat
  // region, or check elimination (rsp/rip rule) would be unsound.
  EXPECT_LT(kStackTop + (2ull << 30), kRegionSize);
  EXPECT_LT(kTrampolineBase + (2ull << 30), kRegionSize);
  // Legacy heap must be outside all low-fat regions.
  EXPECT_GT(kLegacyHeapRegion, kNumSizeClasses);
  EXPECT_LT(kLegacyHeapRegion, kNumRegions);
}

}  // namespace
}  // namespace redfat
