#!/bin/sh
# End-to-end CLI test: the complete Fig. 5 workflow driven through the
# command-line tools, plus detection and disassembly smoke checks.
# Usage: cli_roundtrip.sh <tools-dir>
set -e
TOOLS="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

# Generate a benchmark and a CVE case.
"$TOOLS/rfgen" list > list.txt 2>&1
grep -q "perlbench" list.txt || fail "rfgen list"
"$TOOLS/rfgen" spec mcf mcf.rfbin 2> /dev/null
"$TOOLS/rfgen" cve wireshark cve.rfbin 2> cve_info.txt
ATTACK=$(sed -n 's/.*attack input: \([0-9]*\).*/\1/p' cve_info.txt)
BENIGN=$(sed -n 's/.*benign input: \([0-9]*\).*/\1/p' cve_info.txt)
[ -n "$ATTACK" ] || fail "rfgen cve did not print the attack input"

# Baseline run.
"$TOOLS/rfrun" mcf.rfbin 50 0x3f > base_out.txt || fail "baseline run"

# Two-phase workflow through the CLIs.
"$TOOLS/redfat" --profile mcf.rfbin mcf.prof.rfbin
"$TOOLS/rfrun" --runtime=redfat --policy=log --profile-dump prof.txt \
    mcf.prof.rfbin 50 0x3e > /dev/null || fail "profiling run"
[ -s prof.txt ] || fail "empty profile dump"
"$TOOLS/redfat" --profile-data prof.txt mcf.rfbin mcf.hard.rfbin
"$TOOLS/rfrun" --runtime=redfat mcf.hard.rfbin 50 0x3f > hard_out.txt \
    || fail "hardened run aborted on a clean program"
cmp base_out.txt hard_out.txt || fail "hardened output differs from baseline"

# Detection: the CVE attack must abort (exit 134), benign must pass.
"$TOOLS/redfat" --sitemap cve.map cve.rfbin cve.hard.rfbin
grep -q "full" cve.map || fail "sitemap missing full-check sites"
if "$TOOLS/rfrun" --runtime=redfat --sitemap cve.map cve.hard.rfbin "$ATTACK" \
    > /dev/null 2> attack_err.txt; then
  fail "attack not detected"
else
  [ $? -eq 134 ] || fail "unexpected attack exit code"
fi
grep -q "out-of-bounds write at 0x" attack_err.txt || fail "unsymbolized error report"
"$TOOLS/rfrun" --runtime=redfat cve.hard.rfbin "$BENIGN" > /dev/null \
    || fail "benign CVE input rejected"
# Memcheck misses the same attack (exit 0, no reports).
"$TOOLS/rfrun" --runtime=memcheck --policy=log cve.rfbin "$ATTACK" 2> mc_err.txt \
    > /dev/null || fail "memcheck run failed"
grep -q "MEMORY ERROR" mc_err.txt && fail "memcheck should miss the skip"

# Observability: rewrite-time stats/metrics/trace, runtime metrics/trace,
# and the joined per-site report.
"$TOOLS/redfat" --stats cve.stats.json --metrics cve.rw_metrics.json \
    --trace cve.rw_trace.json cve.rfbin cve.obs.rfbin
cmp cve.hard.rfbin cve.obs.rfbin || fail "telemetry flags changed the image"
[ -s cve.stats.json ] || fail "empty pipeline stats"
"$TOOLS/rfrun" --runtime=redfat --policy=log --metrics=cve.metrics.json \
    --trace=cve.trace.json --report --pipeline-stats cve.stats.json \
    --sitemap cve.map cve.hard.rfbin "$ATTACK" > report.txt 2> /dev/null \
    || fail "telemetry run failed"
grep -q "per-site runtime telemetry" report.txt || fail "missing telemetry report"
grep -q "rz-hits" report.txt || fail "missing report columns"
grep -q "rewrite pipeline" report.txt || fail "report missing pipeline join"
grep -q "=== histograms ===" report.txt || fail "report missing histograms"
grep -q "p99" report.txt || fail "report missing percentile columns"
grep -q "vm.tramp_visit_cycles" report.txt || fail "report missing tramp-cycle histogram"
grep -q '"redzone_hits":[1-9]' cve.metrics.json || fail "metrics missing redzone hits"
grep -q '"traceEvents":' cve.trace.json || fail "trace missing traceEvents"
grep -q '"mem_error"' cve.trace.json || fail "trace missing mem_error instant"

# Shadow-impl variant.
"$TOOLS/redfat" --shadow cve.rfbin cve.sh.rfbin
if "$TOOLS/rfrun" --runtime=redfat-shadow cve.sh.rfbin "$ATTACK" > /dev/null 2>&1; then
  fail "shadow variant missed the attack"
fi

# Disassembler.
"$TOOLS/rfobjdump" --cfg mcf.hard.rfbin > dis.txt || fail "rfobjdump"
grep -q ".redfat.tramp" dis.txt || fail "no trampoline section in dump"
grep -q "jump target" dis.txt || fail "no cfg annotations"

# Profile-guided tiering: profile, merge two runs' metrics, re-rewrite.
"$TOOLS/rfrun" --runtime=redfat --metrics=tier_a.json mcf.hard.rfbin 50 0x3f \
    > /dev/null || fail "tier profiling run a"
"$TOOLS/rfrun" --runtime=redfat --metrics=tier_b.json mcf.hard.rfbin 30 0x3f \
    > /dev/null || fail "tier profiling run b"
"$TOOLS/redfat" --merge-metrics tier_merged.json tier_a.json tier_b.json \
    || fail "merge-metrics"
grep -q '"tramp_cycles":[1-9]' tier_merged.json || fail "merged profile empty"
"$TOOLS/redfat" --profile=tier_merged.json --sitemap tier.map \
    mcf.rfbin mcf.tiered.rfbin || fail "tiered rewrite"
grep -qE " (hot|cold)$" tier.map || fail "tiered sitemap missing tier column"
"$TOOLS/rfrun" --runtime=redfat mcf.tiered.rfbin 50 0x3f > tiered_out.txt \
    || fail "tiered run aborted on a clean program"
cmp base_out.txt tiered_out.txt || fail "tiered output differs from baseline"
"$TOOLS/rfobjdump" mcf.tiered.rfbin > tiered_dis.txt || fail "rfobjdump tiered"
grep -q ".redfat.inline" tiered_dis.txt || fail "no inline-check section in dump"

# Hardening tiers (policy layer). extensive is byte-identical to the
# default flags; fast runs clean; contradictory flag combos are rejected.
"$TOOLS/redfat" --harden=extensive mcf.rfbin mcf.ext.rfbin
cmp mcf.hard.rfbin mcf.ext.rfbin 2> /dev/null || {
  "$TOOLS/redfat" mcf.rfbin mcf.def.rfbin
  cmp mcf.def.rfbin mcf.ext.rfbin || fail "--harden=extensive not byte-identical"
}
"$TOOLS/redfat" --harden=fast --sitemap fast.map mcf.rfbin mcf.fast.rfbin
grep -q "^# harden: fast$" fast.map || fail "sitemap missing policy header"
"$TOOLS/rfrun" --harden=fast mcf.fast.rfbin 50 0x3f > fast_out.txt \
    || fail "fast-tier run aborted on a clean program"
cmp base_out.txt fast_out.txt || fail "fast-tier output differs from baseline"
"$TOOLS/redfat" --harden=fast --shadow mcf.rfbin /dev/null 2> /dev/null \
    && fail "fast+shadow conflict not rejected"
"$TOOLS/redfat" --harden=debug --no-lowfat mcf.rfbin /dev/null 2> /dev/null \
    && fail "debug+no-lowfat conflict not rejected"
"$TOOLS/rfrun" --harden=fast --runtime=redfat mcf.fast.rfbin 5 0x3f 2> /dev/null \
    && fail "rfrun --harden/--runtime conflict not rejected"

# The fast tier drops sites that only rate a (Redzone)-only check: with a
# truncated allow-list profile, unobserved sites demote to redzone-only and
# fast leaves them bare.
head -20 prof.txt > prof_part.txt
"$TOOLS/redfat" --profile-data prof_part.txt --sitemap part.map \
    mcf.rfbin mcf.part.rfbin
"$TOOLS/redfat" --profile-data prof_part.txt --harden=fast --sitemap partf.map \
    mcf.rfbin mcf.partf.rfbin
grep -q "redzone" part.map || fail "partial allow-list produced no redzone sites"
grep -q "redzone" partf.map && fail "fast tier kept redzone-only sites"

# The debug tier still detects the CVE attack, and its resolved tier flows
# from the sitemap header into the runtime and the report's harden column.
"$TOOLS/redfat" --harden=debug --sitemap cve.dbg.map cve.rfbin cve.dbg.rfbin
grep -q "^# harden: debug$" cve.dbg.map || fail "debug sitemap missing header"
if "$TOOLS/rfrun" --harden=debug --sitemap cve.dbg.map cve.dbg.rfbin "$ATTACK" \
    > /dev/null 2> dbg_err.txt; then
  fail "debug tier missed the attack"
else
  [ $? -eq 134 ] || fail "unexpected debug-tier attack exit code"
fi
grep -q "out-of-bounds write at 0x" dbg_err.txt || fail "debug report unsymbolized"
"$TOOLS/rfrun" --harden=debug --sitemap cve.dbg.map cve.dbg.rfbin "$BENIGN" \
    > /dev/null || fail "debug tier rejected the benign input"
"$TOOLS/rfrun" --harden=debug --report --sitemap cve.dbg.map --policy=log \
    cve.dbg.rfbin "$ATTACK" > dbg_report.txt 2> /dev/null \
    || fail "debug-tier report run failed"
grep -q "harden" dbg_report.txt || fail "report missing harden column"
grep -q "debug" dbg_report.txt || fail "report harden column missing tier value"

# Forensics: the uaf workload's benign mode runs clean everywhere; the UAF
# mode under the debug tier yields a provenance-rich report and JSON.
"$TOOLS/rfgen" uaf 1 uaf.rfbin 2> /dev/null
"$TOOLS/rfrun" uaf.rfbin 0 > uaf_base.txt || fail "benign uaf-workload run"
"$TOOLS/redfat" --harden=debug --sitemap uaf.map uaf.rfbin uaf.dbg.rfbin
if "$TOOLS/rfrun" --harden=debug --sitemap uaf.map --error-report uaf_err.json \
    uaf.dbg.rfbin 1 > /dev/null 2> uaf_err.txt; then
  fail "uaf not detected under the debug tier"
else
  [ $? -eq 134 ] || fail "unexpected uaf exit code"
fi
grep -q "allocated at pc 0x" uaf_err.txt || fail "uaf report missing alloc provenance"
grep -q "freed at pc 0x" uaf_err.txt || fail "uaf report missing free provenance"
grep -q "tier: debug" uaf_err.txt || fail "uaf report missing tier"
grep -q "neighborhood of 0x" uaf_err.txt || fail "uaf report missing hex dump"
grep -q '"alloc_pc"' uaf_err.json || fail "error-report JSON missing alloc_pc"
grep -q '"free_pc"' uaf_err.json || fail "error-report JSON missing free_pc"
grep -q '"neighborhood"' uaf_err.json || fail "error-report JSON missing neighborhood"
grep -q '"tier":"debug"' uaf_err.json || fail "error-report JSON missing tier"
# Double free (mode 2) is diagnosed under --policy=log and the run finishes
# with the benign checksum.
"$TOOLS/rfrun" --harden=debug --sitemap uaf.map --policy=log \
    --error-report df_err.json uaf.dbg.rfbin 2 > df_out.txt 2> /dev/null \
    || fail "double-free log run failed"
cmp uaf_base.txt df_out.txt || fail "double-free log run changed the output"
grep -q '"kind":"double-free"' df_err.json || fail "double free not diagnosed"

# Server-latency histograms: request lifetimes land in
# heap.alloc_lifetime_cycles with non-empty percentiles.
"$TOOLS/rfgen" server 1 srv.rfbin 2> /dev/null
"$TOOLS/rfrun" --report srv.rfbin 40 > srv_report.txt || fail "server report run"
grep -q "heap.alloc_lifetime_cycles" srv_report.txt \
    || fail "report missing server-latency histogram"
grep -q "heap.live_objects" srv_report.txt || fail "report missing queue-depth histogram"

# Sampling profiler: deterministic folded output, and attaching the sampler
# (or the forensic ring) changes neither guest cycles nor outputs.
"$TOOLS/rfrun" --runtime=redfat --metrics=obs_off.json mcf.hard.rfbin 50 0x3f \
    > obs_off_out.txt || fail "observability-off run"
"$TOOLS/rfrun" --runtime=redfat --metrics=obs_on.json --sample-period=97 \
    --profile-folded=mcf.folded --error-report obs_err.json \
    mcf.hard.rfbin 50 0x3f > obs_on_out.txt || fail "observability-on run"
cmp obs_off_out.txt obs_on_out.txt || fail "observability changed guest output"
CYC_OFF=$(sed -n 's/.*"vm.cycles":\([0-9]*\).*/\1/p' obs_off.json)
CYC_ON=$(sed -n 's/.*"vm.cycles":\([0-9]*\).*/\1/p' obs_on.json)
[ -n "$CYC_OFF" ] && [ "$CYC_OFF" = "$CYC_ON" ] \
    || fail "observability changed guest cycles ($CYC_OFF vs $CYC_ON)"
[ -s mcf.folded ] || fail "empty folded profile"
grep -q ";tramp;" mcf.folded || fail "folded profile missing trampoline frames"
"$TOOLS/rfrun" --runtime=redfat --sample-period=97 --profile-folded=mcf.folded2 \
    mcf.hard.rfbin 50 0x3f > /dev/null || fail "second sampling run"
cmp mcf.folded mcf.folded2 || fail "sampling is not deterministic"
# A clean run still writes the report, with an affirmative empty error list.
grep -q '"errors":\[\]' obs_err.json || fail "clean run error report not empty"
# The sampler's synthesized metrics feed the --profile= re-tiering join.
"$TOOLS/rfrun" --runtime=redfat --sample-period=97 --profile-metrics=mcf.pm.json \
    mcf.hard.rfbin 50 0x3f > /dev/null || fail "profile-metrics run"
grep -q '"profile.samples":[1-9]' mcf.pm.json || fail "profile metrics empty"
"$TOOLS/redfat" --profile=mcf.pm.json --sitemap sampled.map \
    mcf.rfbin mcf.sampled.rfbin || fail "sampled-profile rewrite"
grep -qE " (hot|cold)$" sampled.map || fail "sampled profile produced no tiers"

echo "cli_roundtrip: OK"
