// White-box tests of the check code generator: decode the emitted
// trampoline payloads and verify their structure (saves, counters, traps,
// configuration effects) instruction by instruction.
#include <gtest/gtest.h>

#include "src/asm/assembler.h"
#include "src/core/codegen.h"
#include "src/core/plan.h"
#include "src/rw/liveness.h"

namespace redfat {
namespace {

std::vector<Instruction> Disassemble(const std::vector<uint8_t>& bytes) {
  std::vector<Instruction> out;
  size_t off = 0;
  while (off < bytes.size()) {
    Result<Decoded> d = Decode(bytes.data() + off, bytes.size() - off);
    EXPECT_TRUE(d.ok()) << d.error();
    if (!d.ok()) {
      break;
    }
    out.push_back(d.value().insn);
    off += d.value().length;
  }
  return out;
}

PlannedTrampoline OneCheck(CheckKind kind, MemOperand mem, uint32_t len = 8,
                           bool is_write = true) {
  PlannedCheck check;
  check.mem = mem;
  check.access_len = len;
  check.kind = kind;
  check.is_write = is_write;
  check.member_sites = {7};
  check.anchor_next = kCodeBase + 32;
  PlannedTrampoline tramp;
  tramp.addr = kCodeBase + 23;
  tramp.checks.push_back(check);
  return tramp;
}

std::vector<Instruction> Emit(const PlannedTrampoline& tramp, const ClobberInfo& clobbers,
                              const RedFatOptions& opts) {
  Assembler as(kTrampolineBase);
  EmitTrampolinePayload(as, tramp, clobbers, opts);
  return Disassemble(as.Finish());
}

size_t CountOp(const std::vector<Instruction>& insns, Op op) {
  size_t n = 0;
  for (const Instruction& in : insns) {
    if (in.op == op) {
      ++n;
    }
  }
  return n;
}

TEST(Codegen, CounterPerMemberSite) {
  PlannedTrampoline tramp = OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 8));
  tramp.checks[0].member_sites = {3, 9, 12};
  const auto insns = Emit(tramp, ClobberInfo{}, RedFatOptions{});
  ASSERT_GE(insns.size(), 3u);
  EXPECT_EQ(CountOp(insns, Op::kCount), 3u);
  EXPECT_EQ(insns[0].op, Op::kCount);
  EXPECT_EQ(insns[0].imm, 3);
  EXPECT_EQ(insns[2].imm, 12);
}

TEST(Codegen, NoClobbersMeansFourSavesPlusFlags) {
  const auto insns =
      Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, RedFatOptions{});
  EXPECT_EQ(CountOp(insns, Op::kPush), 4u);
  EXPECT_EQ(CountOp(insns, Op::kPop), 4u);
  EXPECT_EQ(CountOp(insns, Op::kPushf), 1u);
  EXPECT_EQ(CountOp(insns, Op::kPopf), 1u);
  // Red-zone hop: lea rsp, ±128.
  EXPECT_EQ(CountOp(insns, Op::kLea), 1u + 2u);  // LB lea + 2 rsp hops
}

TEST(Codegen, DeadRegistersSkipSaves) {
  ClobberInfo clobbers;
  clobbers.dead_regs = {Reg::kRax, Reg::kRcx, Reg::kRdx, Reg::kRsi};
  clobbers.flags_dead = true;
  const auto insns =
      Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), clobbers, RedFatOptions{});
  EXPECT_EQ(CountOp(insns, Op::kPush), 0u);
  EXPECT_EQ(CountOp(insns, Op::kPushf), 0u);
  EXPECT_EQ(CountOp(insns, Op::kLea), 1u);  // no rsp hops either
}

TEST(Codegen, ClobberAnalysisDisabledIgnoresDeadRegs) {
  ClobberInfo clobbers;
  clobbers.dead_regs = {Reg::kRax, Reg::kRcx, Reg::kRdx, Reg::kRsi};
  clobbers.flags_dead = true;
  RedFatOptions opts;
  opts.clobber_analysis = false;
  const auto insns = Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), clobbers, opts);
  EXPECT_EQ(CountOp(insns, Op::kPush), 4u);
  EXPECT_EQ(CountOp(insns, Op::kPushf), 1u);
}

TEST(Codegen, ScratchNeverAliasesOperandRegisters) {
  // Operand uses rax/rcx; with rax..rsi "dead", scratch must skip them.
  ClobberInfo clobbers;
  clobbers.dead_regs = {Reg::kRax, Reg::kRcx, Reg::kRdx, Reg::kRbx};
  const MemOperand mem = MemBIS(Reg::kRax, Reg::kRcx, 3, 0);
  const auto insns = Emit(OneCheck(CheckKind::kFull, mem), clobbers, RedFatOptions{});
  // Every register *written* by the payload (mov/load/lea/shr dst) must be
  // neither rax nor rcx (nor rsp).
  std::vector<Reg> written;
  for (const Instruction& in : insns) {
    RegsWritten(in, &written);
    for (Reg r : written) {
      if (in.op == Op::kPush || in.op == Op::kPop || in.op == Op::kPushf ||
          in.op == Op::kPopf) {
        continue;  // rsp bookkeeping
      }
      EXPECT_NE(r, Reg::kRax) << ToString(in);
      EXPECT_NE(r, Reg::kRcx) << ToString(in);
    }
  }
}

TEST(Codegen, RedzoneOnlySkipsPointerPath) {
  const auto full =
      Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, RedFatOptions{});
  const auto rz = Emit(OneCheck(CheckKind::kRedzoneOnly, MemAt(Reg::kRbx, 0)), ClobberInfo{},
                       RedFatOptions{});
  EXPECT_LT(rz.size(), full.size()) << "redzone-only must be a shorter body";
}

TEST(Codegen, SizeHardeningAddsCompare) {
  RedFatOptions with;
  RedFatOptions without;
  without.size_hardening = false;
  const auto a = Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, with);
  const auto b =
      Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, without);
  EXPECT_GT(a.size(), b.size());
  // The hardening trap (kind kMeta) appears only with hardening on.
  bool meta_trap = false;
  for (const Instruction& in : a) {
    if (in.op == Op::kTrap &&
        ErrorArgKind(static_cast<uint32_t>(static_cast<uint64_t>(in.imm) >> 8)) ==
            ErrorKind::kMeta) {
      meta_trap = true;
    }
  }
  EXPECT_TRUE(meta_trap);
}

TEST(Codegen, MergedUbUsesFewerBranches) {
  RedFatOptions merged;
  RedFatOptions separate;
  separate.merged_ub = false;
  const auto a = Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, merged);
  const auto b =
      Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, separate);
  EXPECT_LT(CountOp(a, Op::kJcc), CountOp(b, Op::kJcc))
      << "the u32-underflow trick removes conditional branches (§4.2)";
}

TEST(Codegen, ProfileModeEmitsProfTrapsNotErrors) {
  RedFatOptions opts = RedFatOptions::Profile();
  const auto insns = Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, opts);
  size_t pass = 0;
  size_t fail = 0;
  size_t err = 0;
  for (const Instruction& in : insns) {
    if (in.op != Op::kTrap) {
      continue;
    }
    switch (static_cast<TrapCode>(in.imm & 0xff)) {
      case TrapCode::kProfPass: ++pass; break;
      case TrapCode::kProfFail: ++fail; break;
      case TrapCode::kMemError: ++err; break;
      default: break;
    }
  }
  EXPECT_EQ(pass, 2u) << "pass paths: in-bounds and non-fat";
  EXPECT_EQ(fail, 1u);
  EXPECT_EQ(err, 0u);
}

TEST(Codegen, RspBasedOperandGetsStackBias) {
  // A redzone-only check on -24(%rsp): the lea must compensate for the
  // 128-byte red-zone hop plus the pushed words.
  const auto insns = Emit(OneCheck(CheckKind::kRedzoneOnly, MemAt(Reg::kRsp, -24)),
                          ClobberInfo{}, RedFatOptions{});
  bool found = false;
  for (const Instruction& in : insns) {
    // Skip the rsp-adjustment hops (dst == rsp); the LB lea targets scratch.
    if (in.op == Op::kLea && in.mem.base == Reg::kRsp && in.r0 != Reg::kRsp) {
      // 128 (hop) + 5*8 (4 regs + flags) - 24 = 144.
      EXPECT_EQ(in.mem.disp, 144);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Codegen, ShadowImplLooksUpGuestShadow) {
  RedFatOptions opts;
  opts.redzone_impl = RedzoneImpl::kShadow;
  const auto insns = Emit(OneCheck(CheckKind::kFull, MemAt(Reg::kRbx, 0)), ClobberInfo{}, opts);
  bool shadow_base_loaded = false;
  for (const Instruction& in : insns) {
    if (in.op == Op::kMovRI && static_cast<uint64_t>(in.imm) == kGuestShadowBase) {
      shadow_base_loaded = true;
    }
  }
  EXPECT_TRUE(shadow_base_loaded);
}

}  // namespace
}  // namespace redfat
