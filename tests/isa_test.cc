#include <gtest/gtest.h>

#include <vector>

#include "src/isa/isa.h"
#include "src/support/rng.h"

namespace redfat {
namespace {

Instruction RoundTrip(const Instruction& in) {
  std::vector<uint8_t> bytes;
  const unsigned len = Encode(in, &bytes);
  EXPECT_EQ(len, bytes.size());
  EXPECT_EQ(len, EncodedLength(in.op));
  Result<Decoded> d = Decode(bytes.data(), bytes.size());
  EXPECT_TRUE(d.ok()) << d.error();
  EXPECT_EQ(d.value().length, len);
  return d.value().insn;
}

TEST(IsaEncode, SimpleOpsRoundTrip) {
  for (Op op : {Op::kNop, Op::kHlt, Op::kUd2, Op::kRet, Op::kPushf, Op::kPopf}) {
    Instruction in{.op = op};
    EXPECT_EQ(RoundTrip(in), in);
  }
}

TEST(IsaEncode, MovImm64RoundTrip) {
  Instruction in{.op = Op::kMovRI, .r0 = Reg::kR13,
                 .imm = static_cast<int64_t>(0xdeadbeefcafef00dULL)};
  EXPECT_EQ(RoundTrip(in), in);
}

TEST(IsaEncode, NegativeImm32SignExtends) {
  Instruction in{.op = Op::kAddRI, .r0 = Reg::kRax, .imm = -12345};
  EXPECT_EQ(RoundTrip(in).imm, -12345);
}

TEST(IsaEncode, MemOperandRoundTrip) {
  MemOperand mem;
  mem.base = Reg::kRbx;
  mem.index = Reg::kRcx;
  mem.scale_log2 = 2;
  mem.size_log2 = 1;
  mem.disp = -64;
  Instruction in{.op = Op::kLoad, .r0 = Reg::kRax, .mem = mem};
  EXPECT_EQ(RoundTrip(in), in);
}

TEST(IsaEncode, RipRelativeRoundTrip) {
  MemOperand mem;
  mem.base = Reg::kRip;
  mem.disp = 0x1000;
  Instruction in{.op = Op::kLea, .r0 = Reg::kRsi, .mem = mem};
  EXPECT_EQ(RoundTrip(in), in);
}

TEST(IsaEncode, StoreImmRoundTrip) {
  MemOperand mem;
  mem.base = Reg::kRdi;
  mem.disp = 8;
  Instruction in{.op = Op::kStoreI, .mem = mem, .imm = -7};
  EXPECT_EQ(RoundTrip(in), in);
}

TEST(IsaEncode, BranchesRoundTrip) {
  EXPECT_EQ(RoundTrip({.op = Op::kJmp, .imm = -1000}).imm, -1000);
  Instruction jcc{.op = Op::kJcc, .cond = Cond::kUgt, .imm = 77};
  EXPECT_EQ(RoundTrip(jcc), jcc);
  EXPECT_EQ(RoundTrip({.op = Op::kCall, .imm = 12}).imm, 12);
}

TEST(IsaEncode, TrapPacksCodeAndArg) {
  const uint64_t packed = 3u | (uint64_t{0xabcdef1} << 8);
  Instruction in{.op = Op::kTrap, .imm = static_cast<int64_t>(packed)};
  EXPECT_EQ(RoundTrip(in), in);
}

TEST(IsaDecode, RejectsBadInput) {
  EXPECT_FALSE(Decode(nullptr, 0).ok());
  uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_FALSE(Decode(zero, sizeof(zero)).ok());  // opcode 0 invalid
  uint8_t bad_op[2] = {0xff, 0};
  EXPECT_FALSE(Decode(bad_op, sizeof(bad_op)).ok());
  // Truncated mov imm64.
  std::vector<uint8_t> bytes;
  Encode({.op = Op::kMovRI, .r0 = Reg::kRax, .imm = 1}, &bytes);
  EXPECT_FALSE(Decode(bytes.data(), 5).ok());
}

TEST(IsaDecode, RejectsRipAsIndex) {
  std::vector<uint8_t> bytes;
  MemOperand mem;
  mem.base = Reg::kRax;
  Encode({.op = Op::kLoad, .r0 = Reg::kRax, .mem = mem}, &bytes);
  bytes[3] = static_cast<uint8_t>(Reg::kRip);  // index byte
  EXPECT_FALSE(Decode(bytes.data(), bytes.size()).ok());
}

TEST(IsaProps, JmpIsFiveBytes) {
  // The rewriter overwrites instructions with jmp rel32; its length is a
  // load-bearing constant.
  EXPECT_EQ(EncodedLength(Op::kJmp), 5u);
}

TEST(IsaProps, Classification) {
  EXPECT_TRUE(IsMemAccess(Op::kLoad));
  EXPECT_TRUE(IsMemAccess(Op::kStoreR));
  EXPECT_TRUE(IsMemAccess(Op::kStoreI));
  EXPECT_FALSE(IsMemAccess(Op::kLea));
  EXPECT_FALSE(IsMemAccess(Op::kPush));
  EXPECT_TRUE(IsMemWrite(Op::kStoreR));
  EXPECT_FALSE(IsMemWrite(Op::kLoad));
  EXPECT_TRUE(IsControlFlow(Op::kJmp));
  EXPECT_TRUE(IsControlFlow(Op::kRet));
  EXPECT_TRUE(IsControlFlow(Op::kHlt));
  EXPECT_FALSE(IsControlFlow(Op::kHostCall));
  EXPECT_TRUE(HasRel32(Op::kJcc));
  EXPECT_FALSE(HasRel32(Op::kJmpR));
  EXPECT_TRUE(WritesFlags(Op::kCmpRI));
  EXPECT_FALSE(WritesFlags(Op::kMovRR));
  EXPECT_TRUE(ReadsFlags(Op::kJcc));
  EXPECT_TRUE(ReadsFlags(Op::kPushf));
}

TEST(IsaProps, RegsReadWritten) {
  std::vector<Reg> regs;
  MemOperand mem;
  mem.base = Reg::kRbx;
  mem.index = Reg::kRcx;
  Instruction load{.op = Op::kLoad, .r0 = Reg::kRax, .mem = mem};
  RegsRead(load, &regs);
  EXPECT_EQ(regs, (std::vector<Reg>{Reg::kRbx, Reg::kRcx}));
  RegsWritten(load, &regs);
  EXPECT_EQ(regs, (std::vector<Reg>{Reg::kRax}));

  Instruction store{.op = Op::kStoreR, .r0 = Reg::kRdx, .mem = mem};
  RegsRead(store, &regs);
  EXPECT_EQ(regs, (std::vector<Reg>{Reg::kRdx, Reg::kRbx, Reg::kRcx}));
  RegsWritten(store, &regs);
  EXPECT_TRUE(regs.empty());

  Instruction pop{.op = Op::kPop, .r0 = Reg::kR9};
  RegsWritten(pop, &regs);
  EXPECT_EQ(regs, (std::vector<Reg>{Reg::kR9, Reg::kRsp}));

  // Host calls are conservative: they read everything.
  Instruction hc{.op = Op::kHostCall, .imm = 1};
  RegsRead(hc, &regs);
  EXPECT_EQ(regs.size(), static_cast<size_t>(kNumGprs));
}

// Property: random well-formed instructions survive an encode/decode trip.
TEST(IsaProps, RandomRoundTrip) {
  Rng rng(0xc0ffee);
  const Op ops[] = {Op::kMovRI, Op::kMovRR, Op::kLoad,  Op::kStoreR, Op::kStoreI,
                    Op::kLea,   Op::kAddRR, Op::kAddRI, Op::kSubRI,  Op::kImulRR,
                    Op::kMulhRR, Op::kAndRI, Op::kXorRR, Op::kShlRI, Op::kShrRR,
                    Op::kCmpRI, Op::kTestRR, Op::kJmp,  Op::kJcc,    Op::kCall,
                    Op::kJmpR,  Op::kPush,  Op::kPop,   Op::kHostCall, Op::kTrap,
                    Op::kCount};
  for (int i = 0; i < 5000; ++i) {
    Instruction in;
    in.op = ops[rng.Below(sizeof(ops) / sizeof(ops[0]))];
    in.r0 = static_cast<Reg>(rng.Below(kNumGprs));
    in.r1 = static_cast<Reg>(rng.Below(kNumGprs));
    in.cond = static_cast<Cond>(rng.Below(10));
    in.mem.base = rng.Chance(1, 8) ? Reg::kRip
                                   : (rng.Chance(1, 8) ? Reg::kNone
                                                       : static_cast<Reg>(rng.Below(kNumGprs)));
    in.mem.index =
        rng.Chance(1, 4) ? Reg::kNone : static_cast<Reg>(rng.Below(kNumGprs));
    in.mem.scale_log2 = static_cast<uint8_t>(rng.Below(4));
    in.mem.size_log2 = static_cast<uint8_t>(rng.Below(4));
    in.mem.disp = static_cast<int32_t>(rng.Next());
    switch (in.op) {
      case Op::kMovRI:
        in.imm = static_cast<int64_t>(rng.Next());
        break;
      case Op::kShlRI:
        in.imm = static_cast<int64_t>(rng.Below(64));
        break;
      case Op::kHostCall:
        in.imm = static_cast<int64_t>(rng.Below(8));
        break;
      case Op::kTrap:
        in.imm = static_cast<int64_t>(rng.Next() & 0xffffffffffull);
        break;
      case Op::kCount:
        in.imm = static_cast<int64_t>(rng.Below(1u << 31));
        break;
      default:
        in.imm = static_cast<int32_t>(rng.Next());
        break;
    }
    // Normalize fields the encoding does not carry for this op.
    std::vector<uint8_t> bytes;
    Encode(in, &bytes);
    Result<Decoded> d = Decode(bytes.data(), bytes.size());
    ASSERT_TRUE(d.ok()) << d.error() << " op=" << OpName(in.op);
    std::vector<uint8_t> bytes2;
    Encode(d.value().insn, &bytes2);
    ASSERT_EQ(bytes, bytes2) << OpName(in.op);
  }
}

TEST(IsaPrint, ToStringSmoke) {
  MemOperand mem;
  mem.base = Reg::kRax;
  mem.index = Reg::kRbx;
  mem.scale_log2 = 3;
  mem.disp = 16;
  Instruction in{.op = Op::kStoreR, .r0 = Reg::kRcx, .mem = mem};
  EXPECT_EQ(ToString(in), "store %rcx, 16(%rax,%rbx,8):8");
  EXPECT_EQ(ToString(Instruction{.op = Op::kRet}), "ret");
}

}  // namespace
}  // namespace redfat
