// Tests for coverage-boosted profiling (§5 AFL extension): fuzzing the
// profiling binary must discover sites a single train run misses, yielding
// a larger allow-list and higher production coverage — without ever
// allow-listing an anti-idiom site.
#include <gtest/gtest.h>

#include "src/core/fuzz_profile.h"
#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

InstrumentResult Profiling(const BinaryImage& img) {
  RedFatTool tool(RedFatOptions::Profile());
  Result<InstrumentResult> r = tool.Instrument(img);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(FuzzProfile, DiscoversModeGatedSites) {
  // Half the heap units only execute when inputs[1] bit 0 is set; the train
  // input leaves it clear. Single-run profiling cannot allow-list them.
  SynthParams p;
  p.seed = 404;
  p.ref_only_pct = 50;
  const BinaryImage img = GenerateSynthProgram(p);
  const InstrumentResult prof = Profiling(img);

  // Baseline: single train run.
  RunConfig train;
  train.inputs = TrainInputs(20);
  train.policy = Policy::kLog;
  const RunOutcome single = RunImage(prof.image, RuntimeKind::kRedFat, train);
  const AllowList single_allow = BuildAllowList(single.prof_counts, prof.sites);

  // Fuzzed profiling starting from the same train input.
  FuzzProfileConfig cfg;
  cfg.seed = 9;
  cfg.max_runs = 64;
  cfg.instruction_limit = 1'500'000;
  cfg.initial_inputs = TrainInputs(20);
  const FuzzProfileResult fuzzed = FuzzProfile(prof, cfg);

  EXPECT_GT(fuzzed.allow.addrs.size(), single_allow.addrs.size())
      << "mutating the mode word must unlock the gated sites";
  EXPECT_GE(fuzzed.corpus_size, 2u) << "novel inputs must be retained";

  // Production coverage improves accordingly.
  RedFatTool tool(RedFatOptions{});
  RunConfig ref;
  ref.inputs = RefInputs(20);
  const InstrumentResult hard_single = tool.Instrument(img, &single_allow).value();
  const RunOutcome run_single = RunImage(hard_single.image, RuntimeKind::kRedFat, ref);
  const InstrumentResult hard_fuzzed = tool.Instrument(img, &fuzzed.allow).value();
  const RunOutcome run_fuzzed = RunImage(hard_fuzzed.image, RuntimeKind::kRedFat, ref);
  ASSERT_EQ(run_fuzzed.result.reason, HaltReason::kExit);
  EXPECT_TRUE(run_fuzzed.errors.empty()) << "fuzz-derived allow-list must not cause FPs";
  const double cov_single =
      ComputeCoverage(run_single.counters, hard_single.sites).FullFraction();
  const double cov_fuzzed =
      ComputeCoverage(run_fuzzed.counters, hard_fuzzed.sites).FullFraction();
  EXPECT_GT(cov_fuzzed, cov_single);
}

TEST(FuzzProfile, NeverAllowListsAntiIdiomSites) {
  SynthParams p;
  p.seed = 405;
  p.anti_idiom_sites = 4;
  p.anti_idiom_pct = 10;
  const BinaryImage img = GenerateSynthProgram(p);
  const InstrumentResult prof = Profiling(img);

  FuzzProfileConfig cfg;
  cfg.seed = 10;
  cfg.max_runs = 48;
  cfg.instruction_limit = 1'500'000;
  cfg.initial_inputs = TrainInputs(20);
  const FuzzProfileResult fuzzed = FuzzProfile(prof, cfg);
  EXPECT_GE(fuzzed.sites_always_fail, 4u);

  RedFatTool tool(RedFatOptions{});
  const InstrumentResult hard = tool.Instrument(img, &fuzzed.allow).value();
  RunConfig ref;
  ref.inputs = RefInputs(30);
  const RunOutcome out = RunImage(hard.image, RuntimeKind::kRedFat, ref);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  EXPECT_TRUE(out.errors.empty());
}

TEST(FuzzProfile, SurvivesCrashingMutants) {
  // Mutating the iteration count can blow the instruction limit; the loop
  // must keep going and still produce a usable allow-list.
  SynthParams p;
  p.seed = 406;
  const BinaryImage img = GenerateSynthProgram(p);
  const InstrumentResult prof = Profiling(img);
  FuzzProfileConfig cfg;
  cfg.seed = 11;
  cfg.max_runs = 24;
  cfg.instruction_limit = 200'000;  // tight: big-iteration mutants time out
  cfg.initial_inputs = TrainInputs(5);
  const FuzzProfileResult fuzzed = FuzzProfile(prof, cfg);
  EXPECT_EQ(fuzzed.runs, 24u);
  EXPECT_FALSE(fuzzed.allow.addrs.empty());
}

}  // namespace
}  // namespace redfat
