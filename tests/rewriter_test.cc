#include <gtest/gtest.h>

#include "src/rw/rewriter.h"
#include "src/vm/vm.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

RunResult RunImage(const BinaryImage& img, Vm& vm) {
  vm.LoadImage(img);
  return vm.Run();
}

// A payload that bumps a counter so tests can observe trampoline execution.
PayloadEmitter CountPayload(uint32_t id) {
  return [id](Assembler& as) { as.Count(id); };
}

TEST(Rewriter, RefusesImagesWithTrampolines) {
  ProgramBuilder pb;
  pb.EmitExit(0);
  BinaryImage img = pb.Finish();
  Section t;
  t.kind = Section::Kind::kTrampoline;
  t.vaddr = kTrampolineBase;
  img.sections.push_back(t);
  Rewriter rw(img);
  EXPECT_FALSE(rw.ok());
}

TEST(Rewriter, PatchedProgramBehavesIdentically) {
  ProgramBuilder pb;
  const uint64_t buf = pb.AddZeroData(64);
  Assembler& as = pb.text();
  as.MovRI(Reg::kRbx, buf);
  as.MovRI(Reg::kRax, 7);
  const uint64_t store_addr = as.Here();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  as.Load(Reg::kRdi, MemAt(Reg::kRbx, 8));
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(5);
  const BinaryImage img = pb.Finish();

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok()) << rw.error();
  RewriteStats stats;
  Result<BinaryImage> patched = rw.Apply({{store_addr, CountPayload(1)}}, &stats);
  ASSERT_TRUE(patched.ok()) << patched.error();
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(stats.trampolines, 1u);

  Vm vm0, vm1;
  const RunResult r0 = RunImage(img, vm0);
  const RunResult r1 = RunImage(patched.value(), vm1);
  EXPECT_EQ(r0.reason, HaltReason::kExit);
  EXPECT_EQ(r1.reason, HaltReason::kExit);
  EXPECT_EQ(r0.exit_status, r1.exit_status);
  EXPECT_EQ(vm0.outputs(), vm1.outputs());
  EXPECT_EQ(vm1.counters().at(1), 1u);
  EXPECT_GT(r1.cycles, r0.cycles) << "trampoline jumps cost cycles";
}

TEST(Rewriter, PunsOverShortInstructions) {
  // Patch a 2-byte mov: the 5-byte jmp overwrites following instructions,
  // which must be relocated into the trampoline.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 1);
  as.MovRI(Reg::kRcx, 2);
  const uint64_t patch_addr = as.Here();
  as.MovRR(Reg::kRbx, Reg::kRax);  // 2 bytes
  as.Add(Reg::kRbx, Reg::kRcx);    // 2 bytes
  as.Add(Reg::kRbx, Reg::kRcx);    // 2 bytes (span: 6 bytes >= 5)
  as.MovRR(Reg::kRdi, Reg::kRbx);
  as.HostCall(HostFn::kExit);
  const BinaryImage img = pb.Finish();

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  RewriteStats stats;
  Result<BinaryImage> patched = rw.Apply({{patch_addr, CountPayload(9)}}, &stats);
  ASSERT_TRUE(patched.ok()) << patched.error();
  Vm vm;
  const RunResult r = RunImage(patched.value(), vm);
  EXPECT_EQ(r.reason, HaltReason::kExit);
  EXPECT_EQ(r.exit_status, 5u);  // 1 + 2 + 2
  EXPECT_EQ(vm.counters().at(9), 1u);
}

TEST(Rewriter, SkipsWhenJumpTargetInsideSpan) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto mid = as.NewLabel();
  as.MovRI(Reg::kRax, 0);
  const uint64_t patch_addr = as.Here();
  as.MovRR(Reg::kRbx, Reg::kRax);  // 2 bytes; span would cover `mid`
  as.Bind(mid);
  as.AddI(Reg::kRax, 1);
  as.CmpI(Reg::kRax, 3);
  as.Jcc(Cond::kUlt, mid);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kExit);
  const BinaryImage img = pb.Finish();

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  RewriteStats stats;
  Result<BinaryImage> patched = rw.Apply({{patch_addr, CountPayload(1)}}, &stats);
  ASSERT_TRUE(patched.ok());
  EXPECT_EQ(stats.applied, 0u);
  EXPECT_EQ(stats.skipped_target_conflict, 1u);
  // Unpatched program still runs correctly.
  Vm vm;
  EXPECT_EQ(RunImage(patched.value(), vm).exit_status, 3u);
}

TEST(Rewriter, RelocatesBranchesInSpan) {
  // Punning over a jcc: the relocated jcc must still reach its target.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto done = as.NewLabel();
  as.MovRI(Reg::kRax, 10);
  as.CmpI(Reg::kRax, 10);
  const uint64_t patch_addr = as.Here();
  as.MovRR(Reg::kRbx, Reg::kRax);  // 2 bytes
  as.Jcc(Cond::kEq, done);         // 6 bytes, relocated into trampoline
  as.MovRI(Reg::kRax, 0);          // skipped when branch taken
  as.Bind(done);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kExit);
  const BinaryImage img = pb.Finish();

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  RewriteStats stats;
  Result<BinaryImage> patched = rw.Apply({{patch_addr, CountPayload(2)}}, &stats);
  ASSERT_TRUE(patched.ok()) << patched.error();
  EXPECT_EQ(stats.applied, 1u);
  Vm vm;
  EXPECT_EQ(RunImage(patched.value(), vm).exit_status, 10u);
}

TEST(Rewriter, RelocatesCallWithEmulatedReturnAddress) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto fn = as.NewLabel();
  auto over = as.NewLabel();
  as.Jmp(over);
  as.Bind(fn);
  as.AddI(Reg::kRax, 100);
  as.Ret();
  as.Bind(over);
  as.MovRI(Reg::kRax, 1);
  const uint64_t patch_addr = as.Here();
  as.MovRR(Reg::kRbx, Reg::kRax);  // 2 bytes: span swallows the call
  as.Call(fn);                     // must return to the *original* next insn
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kExit);
  const BinaryImage img = pb.Finish();

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  RewriteStats stats;
  Result<BinaryImage> patched = rw.Apply({{patch_addr, CountPayload(3)}}, &stats);
  ASSERT_TRUE(patched.ok()) << patched.error();
  Vm vm;
  const RunResult r = RunImage(patched.value(), vm);
  EXPECT_EQ(r.reason, HaltReason::kExit);
  EXPECT_EQ(r.exit_status, 101u);
}

TEST(Rewriter, RelocatesRipRelativeOperands) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  // Store to a rip-relative location, then read it back absolutely.
  const uint64_t patch_addr = as.Here();
  const uint64_t scratch = kCodeBase + 0x1000;  // inside text padding below
  // rip-relative store: disp = scratch - next_rip.
  {
    const uint64_t next = as.Here() + EncodedLength(Op::kStoreI);
    MemOperand m = MemAt(Reg::kRip, static_cast<int32_t>(scratch - next));
    as.StoreI(m, 42);
  }
  as.Load(Reg::kRdi, MemAbs(static_cast<int32_t>(scratch)));
  as.HostCall(HostFn::kExit);
  // Pad text so `scratch` is inside the section (loader maps it anyway, but
  // keep the write inside mapped bytes for tidiness).
  while (as.Here() < scratch + 16) {
    as.Nop();
  }
  BinaryImage img = pb.Finish();
  // Replace padding nops after the exit with ud2 so the disassembler is fine
  // but nothing executes them. (They are unreachable.)

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok()) << rw.error();
  RewriteStats stats;
  Result<BinaryImage> patched = rw.Apply({{patch_addr, CountPayload(4)}}, &stats);
  ASSERT_TRUE(patched.ok()) << patched.error();
  EXPECT_EQ(stats.applied, 1u);
  Vm vm;
  const RunResult r = RunImage(patched.value(), vm);
  EXPECT_EQ(r.reason, HaltReason::kExit);
  EXPECT_EQ(r.exit_status, 42u) << "rip-relative disp must be rebased in the trampoline";
}

TEST(Rewriter, MultipleSitesInOneSpanShareTrampoline) {
  ProgramBuilder pb;
  const uint64_t buf = pb.AddZeroData(32);
  Assembler& as = pb.text();
  as.MovRI(Reg::kRbx, buf);
  const uint64_t site1 = as.Here();
  as.MovRR(Reg::kRax, Reg::kRbx);  // 2 bytes (site 1)
  const uint64_t site2 = as.Here();
  as.MovRR(Reg::kRcx, Reg::kRbx);  // 2 bytes (site 2, inside site 1's span)
  as.MovRR(Reg::kRdx, Reg::kRbx);  // 2 bytes
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();

  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  RewriteStats stats;
  Result<BinaryImage> patched =
      rw.Apply({{site1, CountPayload(1)}, {site2, CountPayload(2)}}, &stats);
  ASSERT_TRUE(patched.ok()) << patched.error();
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.trampolines, 1u);
  Vm vm;
  EXPECT_EQ(RunImage(patched.value(), vm).reason, HaltReason::kExit);
  EXPECT_EQ(vm.counters().at(1), 1u);
  EXPECT_EQ(vm.counters().at(2), 1u);
}

TEST(Rewriter, RejectsNonBoundaryAndDuplicateRequests) {
  ProgramBuilder pb;
  pb.text().MovRI(Reg::kRax, 0);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  EXPECT_FALSE(rw.Apply({{kCodeBase + 1, CountPayload(0)}}, nullptr).ok());
  EXPECT_FALSE(
      rw.Apply({{kCodeBase, CountPayload(0)}, {kCodeBase, CountPayload(1)}}, nullptr).ok());
}

TEST(Rewriter, StrayJumpIntoPatchedBytesFaults) {
  // After patching, the bytes following the jmp are ud2 filler; a wild jump
  // into them must fault rather than execute stale bytes.
  ProgramBuilder pb;
  const uint64_t buf = pb.AddZeroData(16);
  Assembler& as = pb.text();
  as.MovRI(Reg::kRbx, buf);
  const uint64_t store_addr = as.Here();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));  // 9 bytes -> 4 bytes of filler
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  Rewriter rw(img);
  ASSERT_TRUE(rw.ok());
  Result<BinaryImage> patched = rw.Apply({{store_addr, CountPayload(1)}}, nullptr);
  ASSERT_TRUE(patched.ok());
  const Section* text = patched.value().FindSection(Section::Kind::kText);
  const uint64_t off = store_addr - text->vaddr;
  for (unsigned i = 5; i < 9; ++i) {
    EXPECT_EQ(text->bytes[off + i], static_cast<uint8_t>(Op::kUd2));
  }
}

}  // namespace
}  // namespace redfat
