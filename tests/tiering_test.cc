// Tests for profile-guided check tiering (core/plan.h AssignSiteTiers, the
// `tier` pass, and the tiered codegen paths) plus the merge-range regression
// that tiering's wider batches made load-bearing: merged check ranges must
// be computed in 64 bits, or negative displacements (rsp-relative checks
// surviving --no-elim) wrap through unsigned arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/asm/assembler.h"
#include "src/core/harness.h"
#include "src/core/plan.h"
#include "src/core/redfat.h"
#include "src/core/sitemap.h"
#include "src/support/telemetry.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

// --- merge-range regression (--no-elim) -------------------------------------

PlannedCheck CheckAt(MemOperand mem, uint32_t len, uint32_t site) {
  PlannedCheck c;
  c.mem = mem;
  c.access_len = len;
  c.kind = CheckKind::kFull;
  c.member_sites = {site};
  return c;
}

TEST(MergeRegression, NegativeDisplacementsMergeWithoutWrapping) {
  // Pre-fix, `disp + access_len` promoted int32 + uint32 to uint32, so a
  // single rsp-32 check computed hi = 4294967272 and the spread CHECK fired.
  PlannedTrampoline t;
  t.checks.push_back(CheckAt(MemAt(Reg::kRsp, -32), 8, 0));
  t.checks.push_back(CheckAt(MemAt(Reg::kRsp, -16), 8, 1));
  MergeTrampolineChecks(&t);
  ASSERT_EQ(t.checks.size(), 1u);
  EXPECT_EQ(t.checks[0].mem.disp, -32);
  EXPECT_EQ(t.checks[0].access_len, 24u);  // [-32, -8)
  EXPECT_EQ(t.checks[0].member_sites, (std::vector<uint32_t>{0, 1}));
}

TEST(MergeRegression, SingleNegativeDispCheckSurvives) {
  PlannedTrampoline t;
  t.checks.push_back(CheckAt(MemAt(Reg::kRsp, -32), 8, 0));
  MergeTrampolineChecks(&t);
  ASSERT_EQ(t.checks.size(), 1u);
  EXPECT_EQ(t.checks[0].mem.disp, -32);
  EXPECT_EQ(t.checks[0].access_len, 8u);
}

TEST(MergeRegression, OverwideGroupsSplitIntoEncodableChecks) {
  // A span wider than INT32_MAX cannot be one merged check (codegen narrows
  // access_len through int32); it must split, not abort.
  PlannedTrampoline t;
  t.checks.push_back(CheckAt(MemAt(Reg::kRbx, INT32_MIN), 8, 0));
  t.checks.push_back(CheckAt(MemAt(Reg::kRbx, INT32_MAX - 8), 8, 1));
  MergeTrampolineChecks(&t);
  ASSERT_EQ(t.checks.size(), 2u);
  EXPECT_EQ(t.checks[0].mem.disp, INT32_MIN);
  EXPECT_EQ(t.checks[1].mem.disp, INT32_MAX - 8);
}

// Two stores below rsp in one block: --no-elim keeps them, batching groups
// them, merging spans their negative displacements. Pre-fix this aborted
// inside the planner.
TEST(MergeRegression, NoElimInstrumentsNegativeStackDisplacements) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRax, 7);
  as.Store(Reg::kRax, MemAt(Reg::kRsp, -32));
  as.Store(Reg::kRax, MemAt(Reg::kRsp, -16));
  as.Load(Reg::kRbx, MemAt(Reg::kRsp, -32));
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();

  RedFatOptions opts;
  opts.elim = false;
  RedFatTool tool(opts);
  Result<InstrumentResult> ir = tool.Instrument(img);
  ASSERT_TRUE(ir.ok()) << ir.error();

  RunConfig cfg;
  const RunOutcome out = RunImage(ir.value().image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  EXPECT_TRUE(out.errors.empty());
}

// --- AssignSiteTiers --------------------------------------------------------

std::vector<SiteRecord> FourSites() {
  std::vector<SiteRecord> sites(4);
  for (uint32_t i = 0; i < 4; ++i) {
    sites[i].id = i;
    sites[i].addr = 0x400000 + 16 * i;
    sites[i].is_write = i % 2 == 0;
    sites[i].kind = CheckKind::kFull;
  }
  return sites;
}

TEST(AssignSiteTiers, MinimalPrefixOfCyclesBecomesHot) {
  std::vector<SiteRecord> sites = FourSites();
  TierProfile profile;
  profile.cycles_by_site = {{0, 100}, {1, 50}, {2, 10}, {3, 0}};
  const TierStats ts = AssignSiteTiers(profile, 0.9, &sites);
  // cum(100) = 0.625, cum(150) = 0.9375 >= 0.9 — two hot sites.
  EXPECT_EQ(ts.hot, 2u);
  EXPECT_EQ(ts.cold, 2u);
  EXPECT_EQ(sites[0].tier, Tier::kHot);
  EXPECT_EQ(sites[1].tier, Tier::kHot);
  EXPECT_EQ(sites[2].tier, Tier::kCold);
  EXPECT_EQ(sites[3].tier, Tier::kCold);  // profiled at zero: cold, never hot
}

TEST(AssignSiteTiers, ThresholdOneHotsEveryNonZeroSite) {
  std::vector<SiteRecord> sites = FourSites();
  TierProfile profile;
  profile.cycles_by_site = {{0, 5}, {1, 5}, {2, 5}, {3, 0}};
  const TierStats ts = AssignSiteTiers(profile, 1.0, &sites);
  EXPECT_EQ(ts.hot, 3u);
  EXPECT_EQ(sites[3].tier, Tier::kCold);
}

TEST(AssignSiteTiers, UnknownSiteIdsAreCountedAndIgnored) {
  std::vector<SiteRecord> sites = FourSites();
  TierProfile profile;
  profile.cycles_by_site = {{0, 10}, {99, 1000000}};
  const TierStats ts = AssignSiteTiers(profile, 0.9, &sites);
  EXPECT_EQ(ts.unknown, 1u);
  EXPECT_EQ(ts.hot, 1u);
  EXPECT_EQ(sites[0].tier, Tier::kHot);
  for (size_t i = 1; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].tier, Tier::kWarm);
  }
}

TEST(AssignSiteTiers, EmptyProfileLeavesEverySiteWarm) {
  std::vector<SiteRecord> sites = FourSites();
  const TierStats ts = AssignSiteTiers(TierProfile{}, 0.9, &sites);
  EXPECT_EQ(ts.hot, 0u);
  EXPECT_EQ(ts.cold, 0u);
  for (const SiteRecord& s : sites) {
    EXPECT_EQ(s.tier, Tier::kWarm);
  }
}

TEST(AssignSiteTiers, AllZeroCyclesPromotesNothing) {
  std::vector<SiteRecord> sites = FourSites();
  TierProfile profile;
  profile.cycles_by_site = {{0, 0}, {1, 0}};
  const TierStats ts = AssignSiteTiers(profile, 0.9, &sites);
  EXPECT_EQ(ts.hot, 0u);
  EXPECT_EQ(ts.cold, 2u);  // profiled-but-unexecuted sites are demoted
  EXPECT_EQ(sites[2].tier, Tier::kWarm);
}

TEST(AssignSiteTiers, SitemapJoinsByAddressAndShape) {
  std::vector<SiteRecord> sites = FourSites();
  // The profiled build numbered its sites differently: profile id 7 is the
  // site at the address of current site 2.
  std::vector<SiteRecord> prof_sites(1);
  prof_sites[0].id = 7;
  prof_sites[0].addr = sites[2].addr;
  prof_sites[0].is_write = sites[2].is_write;
  prof_sites[0].kind = sites[2].kind;
  TierProfile profile;
  profile.sitemap = &prof_sites;
  profile.cycles_by_site = {{7, 500}};
  const TierStats ts = AssignSiteTiers(profile, 0.9, &sites);
  EXPECT_EQ(ts.hot, 1u);
  EXPECT_EQ(sites[2].tier, Tier::kHot);
  EXPECT_EQ(sites[0].tier, Tier::kWarm);
}

TEST(AssignSiteTiers, MismatchedSitemapNeverMisTiers) {
  std::vector<SiteRecord> sites = FourSites();
  std::vector<SiteRecord> prof_sites(2);
  prof_sites[0].id = 0;
  prof_sites[0].addr = 0xdead000;  // address not in the current plan
  prof_sites[1].id = 1;
  prof_sites[1].addr = sites[1].addr;  // address matches, shape does not
  prof_sites[1].is_write = !sites[1].is_write;
  prof_sites[1].kind = sites[1].kind;
  TierProfile profile;
  profile.sitemap = &prof_sites;
  profile.cycles_by_site = {{0, 100}, {1, 100}, {5, 1}};
  const TierStats ts = AssignSiteTiers(profile, 0.9, &sites);
  EXPECT_EQ(ts.mismatched, 2u);
  EXPECT_EQ(ts.unknown, 1u);  // id 5 absent from the profiled sitemap
  EXPECT_EQ(ts.hot, 0u);
  for (const SiteRecord& s : sites) {
    EXPECT_EQ(s.tier, Tier::kWarm);
  }
}

// --- end-to-end tiering -----------------------------------------------------

// Same shape as bench_check_tiering: a hot loop striding a buffer through
// pointer bumps, cold one-shot accesses, and an OOB read under kLog.
BinaryImage HotLoopProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 256);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.MovRI(Reg::kRsi, 1);
  as.MovRI(Reg::kRdx, 256);
  as.HostCall(HostFn::kMemset);
  as.MovRI(Reg::kR14, 21);
  as.Store(Reg::kR14, MemAt(Reg::kR12, 64));  // cold, one-shot
  as.MovRI(Reg::kRsi, 0);
  as.MovRI(Reg::kRcx, 0);
  const Assembler::Label loop = as.NewLabel();
  as.Bind(loop);
  as.MovRR(Reg::kRbx, Reg::kR12);
  for (int i = 0; i < 3; ++i) {
    as.Load(Reg::kR14, MemAt(Reg::kRbx, 0));
    as.Add(Reg::kRsi, Reg::kR14);
    as.AddI(Reg::kRbx, 8);
  }
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 100);
  as.Jcc(Cond::kUlt, loop);
  as.Load(Reg::kR14, MemAt(Reg::kR12, 256));  // OOB: one past the allocation
  as.Add(Reg::kRsi, Reg::kR14);
  as.MovRR(Reg::kRdi, Reg::kRsi);
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

struct TieredRun {
  RunOutcome out;
  uint64_t check_cycles = 0;
};

TieredRun RunWithTelemetry(const BinaryImage& image) {
  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  TieredRun r;
  r.out = RunImage(image, RuntimeKind::kRedFat, cfg);
  const TelemetrySnapshot snap = reg.Snapshot();
  r.check_cycles = snap.TotalSiteEvents(SiteEvent::kTrampCycles) +
                   snap.TotalSiteEvents(SiteEvent::kInlineCycles);
  return r;
}

TierProfile ProfileFromRun(const BinaryImage& untiered_image) {
  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  const RunOutcome out = RunImage(untiered_image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  TierProfile profile;
  for (const SiteTelemetry& st : reg.Snapshot().sites) {
    profile.cycles_by_site[st.site] = st.tramp_cycles() + st.inline_cycles();
  }
  return profile;
}

TEST(TieringEndToEnd, CutsCheckCyclesAndKeepsDetections) {
  const BinaryImage img = HotLoopProgram();
  RedFatTool untiered_tool(RedFatOptions{});
  const InstrumentResult untiered = untiered_tool.Instrument(img).value();
  const TierProfile profile = ProfileFromRun(untiered.image);

  RedFatOptions opts;
  opts.tier_profile = &profile;
  RedFatTool tiered_tool(opts);
  const InstrumentResult tiered = tiered_tool.Instrument(img).value();

  bool any_hot = false;
  for (const SiteRecord& s : tiered.sites) {
    any_hot = any_hot || s.tier == Tier::kHot;
  }
  EXPECT_TRUE(any_hot);

  const TieredRun a = RunWithTelemetry(untiered.image);
  const TieredRun b = RunWithTelemetry(tiered.image);
  EXPECT_EQ(b.out.outputs, a.out.outputs);
  ASSERT_EQ(b.out.errors.size(), a.out.errors.size());
  ASSERT_FALSE(a.out.errors.empty());
  for (size_t i = 0; i < a.out.errors.size(); ++i) {
    EXPECT_EQ(b.out.errors[i].site, a.out.errors[i].site);
    EXPECT_EQ(b.out.errors[i].kind, a.out.errors[i].kind);
  }
  EXPECT_LT(b.check_cycles, a.check_cycles);
}

TEST(TieringEndToEnd, FullyMismatchedProfileIsByteIdenticalToUntiered) {
  const BinaryImage img = HotLoopProgram();
  RedFatTool plain(RedFatOptions{});
  const InstrumentResult untiered = plain.Instrument(img).value();

  // Profile "from another binary": every address misses the current plan,
  // so the tier pass resolves nothing and the output must not change.
  std::vector<SiteRecord> alien(2);
  alien[0].id = 0;
  alien[0].addr = 0x9999990;
  alien[1].id = 1;
  alien[1].addr = 0x9999998;
  TierProfile profile;
  profile.sitemap = &alien;
  profile.cycles_by_site = {{0, 12345}, {1, 777}};
  RedFatOptions opts;
  opts.tier_profile = &profile;
  RedFatTool tiered_tool(opts);
  const InstrumentResult tiered = tiered_tool.Instrument(img).value();

  EXPECT_EQ(tiered.image.Serialize(), untiered.image.Serialize());
  for (const SiteRecord& s : tiered.sites) {
    EXPECT_EQ(s.tier, Tier::kWarm);
  }
}

TEST(TieringEndToEnd, EmptyProfileIsByteIdenticalToUntiered) {
  const BinaryImage img = HotLoopProgram();
  RedFatTool plain(RedFatOptions{});
  const InstrumentResult untiered = plain.Instrument(img).value();

  TierProfile profile;  // no sites at all
  RedFatOptions opts;
  opts.tier_profile = &profile;
  RedFatTool tiered_tool(opts);
  const InstrumentResult tiered = tiered_tool.Instrument(img).value();
  EXPECT_EQ(tiered.image.Serialize(), untiered.image.Serialize());
}

TEST(TieringEndToEnd, TieredRewriteIsDeterministicAcrossJobs) {
  const BinaryImage img = HotLoopProgram();
  RedFatTool plain(RedFatOptions{});
  const InstrumentResult untiered = plain.Instrument(img).value();
  const TierProfile profile = ProfileFromRun(untiered.image);

  std::vector<uint8_t> jobs1;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    RedFatOptions opts;
    opts.tier_profile = &profile;
    opts.jobs = jobs;
    RedFatTool tool(opts);
    const std::vector<uint8_t> bytes = tool.Instrument(img).value().image.Serialize();
    if (jobs == 1) {
      jobs1 = bytes;
    } else {
      EXPECT_EQ(bytes, jobs1) << "jobs=" << jobs;
    }
  }
}

// --- tier column in the site map --------------------------------------------

TEST(TieringSiteMap, TierColumnRoundTripsAndStaysOptional) {
  std::vector<SiteRecord> sites = FourSites();
  // All-warm: serialization must match the pre-tiering format exactly.
  const std::string untiered_text = SerializeSiteMap(sites);
  EXPECT_EQ(untiered_text.find("tier"), std::string::npos);

  sites[1].tier = Tier::kHot;
  sites[2].tier = Tier::kCold;
  const std::string tiered_text = SerializeSiteMap(sites);
  EXPECT_NE(tiered_text.find(" hot"), std::string::npos);

  std::vector<std::string> lines;
  std::string cur;
  for (char ch : tiered_text) {
    if (ch == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  Result<std::vector<SiteRecord>> parsed = ParseSiteMap(lines);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  ASSERT_EQ(parsed.value().size(), sites.size());
  EXPECT_EQ(parsed.value()[0].tier, Tier::kWarm);
  EXPECT_EQ(parsed.value()[1].tier, Tier::kHot);
  EXPECT_EQ(parsed.value()[2].tier, Tier::kCold);
}

}  // namespace
}  // namespace redfat
