// Unit tests for the instrumentation planner: elimination policy table,
// check-kind policy, batching legality, merging semantics, allow-list
// interaction, and stats consistency.
#include <gtest/gtest.h>

#include "src/core/plan.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

InstrumentPlan PlanOf(const BinaryImage& img, const RedFatOptions& opts,
                      const AllowList* allow = nullptr) {
  const Disassembly dis = DisassembleText(img).value();
  const CfgInfo cfg = RecoverCfg(dis, img);
  return BuildPlan(dis, cfg, opts, allow);
}

// --- elimination policy, parameterized over operand shapes -----------------

struct ElimCase {
  const char* name;
  MemOperand mem;
  bool eliminable;
  bool unambiguous;
};

class ElimPolicy : public ::testing::TestWithParam<ElimCase> {};

TEST_P(ElimPolicy, MatchesSpec) {
  const ElimCase& c = GetParam();
  EXPECT_EQ(IsEliminable(c.mem), c.eliminable) << c.name;
  EXPECT_EQ(HasUnambiguousPointer(c.mem), c.unambiguous) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ElimPolicy,
    ::testing::Values(
        ElimCase{"absolute", MemAbs(0x1000), true, false},
        ElimCase{"rsp_disp", MemAt(Reg::kRsp, -8), true, false},
        ElimCase{"rip_disp", MemAt(Reg::kRip, 0x40), true, false},
        ElimCase{"gpr_disp", MemAt(Reg::kRbx, 8), false, true},
        ElimCase{"rbp_disp", MemAt(Reg::kRbp, -16), false, true},
        ElimCase{"gpr_indexed", MemBIS(Reg::kRbx, Reg::kRcx, 3, 0), false, true},
        ElimCase{"rsp_indexed", MemBIS(Reg::kRsp, Reg::kRcx, 3, 0), false, false},
        ElimCase{"abs_indexed", MemBIS(Reg::kNone, Reg::kRcx, 3, 0x1000), false, false},
        ElimCase{"rip_indexed", MemBIS(Reg::kRip, Reg::kRcx, 0, 0), false, false}),
    [](const ::testing::TestParamInfo<ElimCase>& info) { return info.param.name; });

// --- check-kind policy ------------------------------------------------------

TEST(PlanPolicy, AmbiguousPointersGetRedzoneOnly) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Store(Reg::kRax, MemBIS(Reg::kNone, Reg::kRcx, 3, 0x1000));  // abs+index
  as.Store(Reg::kRax, MemBIS(Reg::kRsp, Reg::kRcx, 3, 0));        // rsp+index
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));                       // unambiguous
  pb.EmitExit(0);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions{});
  ASSERT_EQ(plan.sites.size(), 3u);
  EXPECT_EQ(plan.sites[0].kind, CheckKind::kRedzoneOnly);
  EXPECT_EQ(plan.sites[1].kind, CheckKind::kRedzoneOnly);
  EXPECT_EQ(plan.sites[2].kind, CheckKind::kFull);
}

TEST(PlanPolicy, NoLowfatDemotesEverything) {
  ProgramBuilder pb;
  pb.text().Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  pb.EmitExit(0);
  RedFatOptions opts;
  opts.lowfat = false;
  const InstrumentPlan plan = PlanOf(pb.Finish(), opts);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0].kind, CheckKind::kRedzoneOnly);
}

TEST(PlanPolicy, AllowListGatesFullChecks) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  const uint64_t site_a = as.Here();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.MovRI(Reg::kRbx, 0);  // break the batch so both sites stay distinct
  const uint64_t site_b = as.Here();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();

  AllowList allow;
  allow.addrs.insert(site_a);
  const InstrumentPlan plan = PlanOf(img, RedFatOptions{}, &allow);
  ASSERT_EQ(plan.sites.size(), 2u);
  EXPECT_EQ(plan.sites[0].addr, site_a);
  EXPECT_EQ(plan.sites[0].kind, CheckKind::kFull);
  EXPECT_EQ(plan.sites[1].addr, site_b);
  EXPECT_EQ(plan.sites[1].kind, CheckKind::kRedzoneOnly)
      << "sites missing from the allow-list fall back to redzone-only";
}

TEST(PlanPolicy, ProfileModeIgnoresAllowList) {
  ProgramBuilder pb;
  pb.text().Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  pb.EmitExit(0);
  AllowList empty;
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Profile(), &empty);
  ASSERT_EQ(plan.sites.size(), 1u);
  EXPECT_EQ(plan.sites[0].kind, CheckKind::kFull);
}

// --- batching legality -------------------------------------------------------

TEST(PlanBatch, IndexWriteBreaksBatch) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Store(Reg::kRax, MemBIS(Reg::kRbx, Reg::kRcx, 3, 0));
  as.MovRI(Reg::kRcx, 5);  // rewrites the index register
  as.Store(Reg::kRax, MemBIS(Reg::kRbx, Reg::kRcx, 3, 8));
  pb.EmitExit(0);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Batch());
  EXPECT_EQ(plan.stats.trampolines, 2u);
}

TEST(PlanBatch, UnrelatedWritesDoNotBreakBatch) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.MovRI(Reg::kRdx, 5);  // rdx is not used by any operand
  as.AddI(Reg::kRax, 1);   // rax is the *stored value*, not an address reg
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  pb.EmitExit(0);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Batch());
  EXPECT_EQ(plan.stats.trampolines, 1u);
  EXPECT_EQ(plan.stats.checks_emitted, 2u);
}

TEST(PlanBatch, ControlFlowEndsBatch) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto l = as.NewLabel();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.Jmp(l);
  as.Bind(l);
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  pb.EmitExit(0);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Batch());
  EXPECT_EQ(plan.stats.trampolines, 2u);
}

TEST(PlanBatch, JumpTargetSplitsBatch) {
  // Even a fallthrough block boundary (jump target) must split the batch:
  // control may enter at the second store without passing the leader.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  auto target = as.NewLabel();
  as.CmpI(Reg::kRax, 0);
  as.Jcc(Cond::kEq, target);
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.Bind(target);
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  pb.EmitExit(0);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Batch());
  EXPECT_EQ(plan.stats.trampolines, 2u);
}

// --- merging semantics ------------------------------------------------------

TEST(PlanMerge, WidensToUnionRange) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.StoreI(MemAt(Reg::kRbx, 24, /*size_log2=*/2), 1);  // [24,28)
  as.StoreI(MemAt(Reg::kRbx, 0, /*size_log2=*/0), 2);   // [0,1)
  as.StoreI(MemAt(Reg::kRbx, 8, /*size_log2=*/3), 3);   // [8,16)
  pb.EmitExit(0);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Merge());
  ASSERT_EQ(plan.trampolines.size(), 1u);
  ASSERT_EQ(plan.trampolines[0].checks.size(), 1u);
  const PlannedCheck& c = plan.trampolines[0].checks[0];
  EXPECT_EQ(c.mem.disp, 0);
  EXPECT_EQ(c.access_len, 28u);
  EXPECT_EQ(c.member_sites.size(), 3u);
  EXPECT_TRUE(c.is_write);
}

TEST(PlanMerge, DifferentShapesStaySeparate) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.StoreI(MemAt(Reg::kRbx, 0), 1);
  as.StoreI(MemAt(Reg::kRbp, 0), 2);                       // different base
  as.Store(Reg::kRax, MemBIS(Reg::kRbx, Reg::kRcx, 3, 0)); // indexed
  as.Store(Reg::kRax, MemBIS(Reg::kRbx, Reg::kRcx, 2, 0)); // different scale
  pb.EmitExit(0);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Merge());
  ASSERT_EQ(plan.trampolines.size(), 1u);
  EXPECT_EQ(plan.trampolines[0].checks.size(), 4u);
}

TEST(PlanMerge, MixedKindsDoNotMerge) {
  // Same shape, but one site is allow-listed (full) and the other is not
  // (redzone-only): merging them would change semantics.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  const uint64_t site_a = as.Here();
  as.StoreI(MemAt(Reg::kRbx, 0), 1);
  as.StoreI(MemAt(Reg::kRbx, 8), 2);
  pb.EmitExit(0);
  AllowList allow;
  allow.addrs.insert(site_a);
  const InstrumentPlan plan = PlanOf(pb.Finish(), RedFatOptions::Merge(), &allow);
  ASSERT_EQ(plan.trampolines.size(), 1u);
  EXPECT_EQ(plan.trampolines[0].checks.size(), 2u);
}

TEST(PlanStatsConsistency, CountsAddUp) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.StoreI(MemAbs(0x1000), 1);             // eliminated
  as.Load(Reg::kRax, MemAt(Reg::kRbx, 0));  // read site
  as.StoreI(MemAt(Reg::kRbx, 8), 2);        // write site
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const InstrumentPlan plan = PlanOf(img, RedFatOptions{});
  EXPECT_EQ(plan.stats.mem_operands, 3u);
  EXPECT_EQ(plan.stats.considered, 3u);
  EXPECT_EQ(plan.stats.eliminated, 1u);
  EXPECT_EQ(plan.stats.full_sites + plan.stats.redzone_sites, plan.sites.size());
  // Site ids are dense and match vector positions.
  for (size_t i = 0; i < plan.sites.size(); ++i) {
    EXPECT_EQ(plan.sites[i].id, i);
  }

  RedFatOptions no_reads = RedFatOptions::NoReads();
  const InstrumentPlan plan2 = PlanOf(img, no_reads);
  EXPECT_EQ(plan2.stats.mem_operands, 3u);
  EXPECT_EQ(plan2.stats.considered, 2u) << "reads are not considered under -reads";
  EXPECT_EQ(plan2.sites.size(), 1u);
  EXPECT_TRUE(plan2.sites[0].is_write);
}

}  // namespace
}  // namespace redfat
