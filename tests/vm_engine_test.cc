// Differential dispatch-engine equivalence (ISSUE 5 + ISSUE 8 contract):
// every dispatch mode of the superblock engine — plain block, specialized
// handlers, and direct chaining with trace formation — must reproduce the
// stepper bit-for-bit: instructions, cycles, explicit reads/writes, outputs,
// mem-error reports, prof counts, telemetry snapshots and trace slices — for
// every golden config × workload, for randomized programs, and for every
// edge the block boundary and chaining logic has: instruction limits landing
// mid-block / mid-chain / mid-trace, mem-error aborts at the same points,
// hostcall/trap termination, one-instruction self-loops, direct-mapped code
// cache collisions evicting chained-to blocks, TLB + chain invalidation
// across LoadImage, and observer attachment forcing the transparent
// unchained fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/dbi/memcheck.h"
#include "src/heap/legacy_heap.h"
#include "src/support/rng.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/support/trace.h"
#include "src/workloads/builder.h"
#include "src/workloads/kraken.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

// Everything a guest run can externally produce, flattened to comparable
// strings so a mismatch names the diverging field directly.
struct RunFingerprint {
  std::string result;
  std::vector<uint64_t> outputs;
  std::vector<std::string> errors;
  std::vector<std::string> prof_counts;
  std::string counters;
  uint64_t touched_pages = 0;
  std::string metrics;  // telemetry snapshot JSON ("" when not attached)
  std::string trace;    // trace-event JSON ("" when not attached)
};

std::string FormatResult(const RunResult& r) {
  return StrFormat("reason=%d exit=%llu insns=%llu cycles=%llu reads=%llu writes=%llu "
                   "fault='%s'",
                   static_cast<int>(r.reason),
                   static_cast<unsigned long long>(r.exit_status),
                   static_cast<unsigned long long>(r.instructions),
                   static_cast<unsigned long long>(r.cycles),
                   static_cast<unsigned long long>(r.explicit_reads),
                   static_cast<unsigned long long>(r.explicit_writes),
                   r.fault_message.c_str());
}

RunFingerprint Fingerprint(const RunOutcome& out, const std::string& metrics,
                           const std::string& trace) {
  RunFingerprint fp;
  fp.result = FormatResult(out.result);
  fp.outputs = out.outputs;
  for (const MemErrorReport& e : out.errors) {
    fp.errors.push_back(StrFormat("site=%u kind=%d rip=0x%llx idx=%llu", e.site,
                                  static_cast<int>(e.kind),
                                  static_cast<unsigned long long>(e.rip),
                                  static_cast<unsigned long long>(e.instruction_index)));
  }
  std::vector<std::pair<uint32_t, uint64_t>> counters(out.counters.begin(),
                                                      out.counters.end());
  std::sort(counters.begin(), counters.end());
  for (const auto& [site, n] : counters) {
    fp.counters += StrFormat("%u=%llu;", site, static_cast<unsigned long long>(n));
  }
  std::vector<std::pair<uint32_t, Vm::ProfCounts>> prof(out.prof_counts.begin(),
                                                        out.prof_counts.end());
  std::sort(prof.begin(), prof.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [site, pc] : prof) {
    fp.prof_counts.push_back(StrFormat("%u:%llu/%llu", site,
                                       static_cast<unsigned long long>(pc.passes),
                                       static_cast<unsigned long long>(pc.fails)));
  }
  fp.touched_pages = out.touched_pages;
  fp.metrics = metrics;
  fp.trace = trace;
  return fp;
}

// The dispatch-mode axis: reference stepper, plain superblocks, specialized
// handlers, and full chaining + traces (the production default). Every test
// run through ExpectEnginesAgree is a |kModes|-way differential.
struct EngineMode {
  const char* name;
  VmEngine engine;
  bool chain;
  bool specialize;
};

constexpr EngineMode kModes[] = {
    {"step", VmEngine::kStep, false, false},
    {"block", VmEngine::kBlock, false, false},
    {"spec", VmEngine::kBlock, false, true},
    {"chained", VmEngine::kBlock, true, true},
};
constexpr size_t kNumModes = sizeof(kModes) / sizeof(kModes[0]);

// Runs `img` under every dispatch mode with identical config (telemetry +
// trace attached when `observe`) and asserts every produced artifact matches
// the stepper's.
void ExpectEnginesAgree(const BinaryImage& img, RuntimeKind kind, RunConfig cfg,
                        bool observe, const std::string& what) {
  RunFingerprint ref;
  for (size_t i = 0; i < kNumModes; ++i) {
    TelemetryRegistry telemetry;
    TraceWriter trace;
    RunConfig c = cfg;
    c.engine = kModes[i].engine;
    c.chain = kModes[i].chain;
    c.specialize = kModes[i].specialize;
    if (observe) {
      c.telemetry = &telemetry;
      c.trace = &trace;
    }
    const RunOutcome out = RunImage(img, kind, c);
    RunFingerprint fp = Fingerprint(out, observe ? telemetry.Snapshot().ToJson() : "",
                                    observe ? trace.ToJson() : "");
    if (i == 0) {
      ref = std::move(fp);
      continue;
    }
    const std::string tag = what + " [" + kModes[i].name + "]";
    EXPECT_EQ(ref.result, fp.result) << tag;
    EXPECT_EQ(ref.outputs, fp.outputs) << tag;
    EXPECT_EQ(ref.errors, fp.errors) << tag;
    EXPECT_EQ(ref.prof_counts, fp.prof_counts) << tag;
    EXPECT_EQ(ref.counters, fp.counters) << tag;
    EXPECT_EQ(ref.touched_pages, fp.touched_pages) << tag;
    EXPECT_EQ(ref.metrics, fp.metrics) << tag;
    EXPECT_EQ(ref.trace, fp.trace) << tag;
  }
}

struct GoldenConfig {
  const char* name;
  RedFatOptions opts;
  RuntimeKind runtime;
};

std::vector<GoldenConfig> GoldenConfigs() {
  RedFatOptions shadow;
  shadow.redzone_impl = RedzoneImpl::kShadow;
  return {
      {"unoptimized", RedFatOptions::Unoptimized(), RuntimeKind::kRedFat},
      {"elim", RedFatOptions::Elim(), RuntimeKind::kRedFat},
      {"batch", RedFatOptions::Batch(), RuntimeKind::kRedFat},
      {"merge", RedFatOptions::Merge(), RuntimeKind::kRedFat},
      {"no-size", RedFatOptions::NoSize(), RuntimeKind::kRedFat},
      {"no-reads", RedFatOptions::NoReads(), RuntimeKind::kRedFat},
      {"profile", RedFatOptions::Profile(), RuntimeKind::kRedFat},
      {"shadow", shadow, RuntimeKind::kRedFatShadow},
  };
}

// (a) Every golden config × the determinism-stress workloads, with the full
// observability surface attached (telemetry + trace), under the matching
// hardened runtime.
TEST(VmEngine, GoldenConfigsAgreeOnSynth) {
  SynthParams p;
  p.seed = 0xd57e55;
  p.mem_pct = 35;
  p.stream_pct = 6;
  p.churn_pct = 4;
  p.max_accesses_per_ptr = 4;
  const BinaryImage img = GenerateSynthProgram(p);
  for (const GoldenConfig& cfg : GoldenConfigs()) {
    RedFatTool tool(cfg.opts);
    Result<InstrumentResult> ir = tool.Instrument(img);
    ASSERT_TRUE(ir.ok()) << cfg.name << ": " << ir.error();
    RunConfig rc;
    rc.inputs = RefInputs(15);
    ExpectEnginesAgree(ir.value().image, cfg.runtime, rc, /*observe=*/true,
                       std::string("synth-mid/") + cfg.name);
  }
}

TEST(VmEngine, GoldenConfigsAgreeOnKraken) {
  const KrakenBenchmark& bench = KrakenSuite().front();
  const BinaryImage img = BuildKrakenBenchmark(bench);
  for (const GoldenConfig& cfg : GoldenConfigs()) {
    RedFatTool tool(cfg.opts);
    Result<InstrumentResult> ir = tool.Instrument(img);
    ASSERT_TRUE(ir.ok()) << cfg.name << ": " << ir.error();
    RunConfig rc;
    rc.inputs = RefInputs(40);
    ExpectEnginesAgree(ir.value().image, cfg.runtime, rc, /*observe=*/true,
                       bench.name + "/" + cfg.name);
  }
}

// Memcheck attaches a per-instruction ExecObserver; it must fire at the same
// points (and charge the same cycles) inside a block as under the stepper.
TEST(VmEngine, MemcheckObserverAgrees) {
  SynthParams p;
  p.seed = 77;
  p.churn_pct = 4;
  const BinaryImage img = GenerateSynthProgram(p);
  RunConfig base;
  base.inputs = RefInputs(15);
  RunFingerprint fps[2];
  const VmEngine engines[2] = {VmEngine::kStep, VmEngine::kBlock};
  for (int i = 0; i < 2; ++i) {
    RunConfig c = base;
    c.engine = engines[i];
    fps[i] = Fingerprint(RunMemcheck(img, c), "", "");
  }
  EXPECT_EQ(fps[0].result, fps[1].result);
  EXPECT_EQ(fps[0].outputs, fps[1].outputs);
  EXPECT_EQ(fps[0].errors, fps[1].errors);
  EXPECT_EQ(fps[0].touched_pages, fps[1].touched_pages);
}

// (b) Randomized programs from the fuzz generator: arbitrary byte soup must
// fault/halt/limit at the identical instruction with identical state.
TEST(VmEngine, RandomProgramsAgree) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 200; ++trial) {
    BinaryImage img;
    img.entry = kCodeBase;
    Section text;
    text.kind = Section::Kind::kText;
    text.vaddr = kCodeBase;
    for (int i = 0; i < 256; ++i) {
      text.bytes.push_back(static_cast<uint8_t>(rng.Next()));
    }
    img.sections.push_back(std::move(text));
    RunConfig cfg;
    cfg.instruction_limit = 5000;
    cfg.policy = Policy::kLog;
    ExpectEnginesAgree(img, RuntimeKind::kBaseline, cfg, /*observe=*/false,
                       StrFormat("random trial %d", trial));
  }
}

// (c) The instruction limit must halt at the exact same instruction even
// when it lands in the middle of a long straight-line block.
TEST(VmEngine, InstructionLimitMidBlock) {
  ProgramBuilder pb;
  Assembler& a = pb.text();
  for (int i = 0; i < 60; ++i) {
    a.AddI(Reg::kRax, 1);  // one long straight-line run
  }
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  for (uint64_t limit = 1; limit <= 64; ++limit) {
    RunConfig cfg;
    cfg.instruction_limit = limit;
    ExpectEnginesAgree(img, RuntimeKind::kBaseline, cfg, /*observe=*/false,
                       StrFormat("limit=%llu", static_cast<unsigned long long>(limit)));
  }
}

// A mem-error abort raised by the observer (memcheck) in the middle of a
// block must stop at the same instruction with the same report.
TEST(VmEngine, MemErrorAbortMidBlock) {
  ProgramBuilder pb;
  Assembler& a = pb.text();
  a.MovRI(Reg::kRdi, 64);
  a.HostCall(HostFn::kMalloc);
  a.MovRR(Reg::kR12, Reg::kRax);
  // Straight-line run: valid, valid, REDZONE, valid — the abort lands two
  // instructions into a four-load block.
  a.Load(Reg::kR14, MemAt(Reg::kR12, 0));
  a.Load(Reg::kR14, MemAt(Reg::kR12, 8));
  a.Load(Reg::kR14, MemAt(Reg::kR12, -8));
  a.Load(Reg::kR14, MemAt(Reg::kR12, 16));
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  for (const Policy policy : {Policy::kHarden, Policy::kLog}) {
    RunConfig cfg;
    cfg.policy = policy;
    RunFingerprint fps[2];
    const VmEngine engines[2] = {VmEngine::kStep, VmEngine::kBlock};
    for (int i = 0; i < 2; ++i) {
      RunConfig c = cfg;
      c.engine = engines[i];
      fps[i] = Fingerprint(RunMemcheck(img, c), "", "");
    }
    EXPECT_EQ(fps[0].result, fps[1].result) << "policy=" << static_cast<int>(policy);
    EXPECT_EQ(fps[0].errors, fps[1].errors) << "policy=" << static_cast<int>(policy);
    ASSERT_FALSE(fps[0].errors.empty());
  }
}

// Hostcalls and traps terminate blocks; a trap mid-stream under kLog resumes
// with the next block, under kHarden aborts — identically in both engines.
TEST(VmEngine, HostcallAndTrapTermination) {
  ProgramBuilder pb;
  Assembler& a = pb.text();
  a.MovRI(Reg::kRax, 5);
  a.Trap(TrapCode::kMemError, PackErrorArg(9, ErrorKind::kBounds));
  a.AddI(Reg::kRax, 2);
  a.MovRR(Reg::kRdi, Reg::kRax);
  a.HostCall(HostFn::kOutputU64);
  a.Trap(TrapCode::kProfPass, 3);
  a.Trap(TrapCode::kProfFail, 3);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  for (const Policy policy : {Policy::kHarden, Policy::kLog}) {
    RunConfig cfg;
    cfg.policy = policy;
    ExpectEnginesAgree(img, RuntimeKind::kBaseline, cfg, /*observe=*/false,
                       StrFormat("policy=%d", static_cast<int>(policy)));
  }
}

// A one-instruction self-branching loop is the smallest possible block; the
// cache must hit it every iteration and the limit must still be exact.
TEST(VmEngine, SelfBranchingOneInstructionLoop) {
  ProgramBuilder pb;
  Assembler& a = pb.text();
  auto spin = a.NewLabel();
  a.Bind(spin);
  a.Jmp(spin);
  const BinaryImage img = pb.Finish();
  RunConfig cfg;
  cfg.instruction_limit = 12345;
  ExpectEnginesAgree(img, RuntimeKind::kBaseline, cfg, /*observe=*/false, "self-loop");
}

// Two hot blocks whose entry addresses are exactly 4096 bytes apart map to
// the same direct-mapped slot (kBlockCacheSize = 4096, indexed by address
// bits): every iteration evicts and rebuilds — correctness must not depend
// on residency.
TEST(VmEngine, CodeCacheCollisions) {
  ProgramBuilder pb;
  Assembler& a = pb.text();
  auto f1 = a.NewLabel();
  auto f2 = a.NewLabel();
  auto main_l = a.NewLabel();
  a.Jmp(main_l);
  const uint64_t f1_addr = a.Here();
  a.Bind(f1);
  a.AddI(Reg::kR15, 1);
  a.Ret();
  while (a.Here() < f1_addr + 4096) {
    a.Nop();
  }
  ASSERT_EQ(a.Here(), f1_addr + 4096);
  a.Bind(f2);
  a.AddI(Reg::kR15, 3);
  a.Ret();
  a.Bind(main_l);
  a.MovRI(Reg::kR15, 0);
  a.MovRI(Reg::kR8, 500);
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Call(f1);
  a.Call(f2);
  a.SubI(Reg::kR8, 1);
  a.CmpI(Reg::kR8, 0);
  a.Jcc(Cond::kNe, loop);
  a.MovRR(Reg::kRdi, Reg::kR15);
  a.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  RunConfig cfg;
  ExpectEnginesAgree(img, RuntimeKind::kBaseline, cfg, /*observe=*/false, "collisions");
  // And the computed value is right, not merely engine-consistent.
  RunConfig block_cfg;
  block_cfg.engine = VmEngine::kBlock;
  const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, block_cfg);
  ASSERT_EQ(out.outputs.size(), 1u);
  EXPECT_EQ(out.outputs[0], 2000u);
}

// LoadImage must invalidate both the block cache and the memory TLB: a
// second image at overlapping addresses must not execute (or read) stale
// state from the first.
TEST(VmEngine, TlbAndBlockCacheInvalidationAcrossLoadImage) {
  auto build = [](uint64_t value) {
    ProgramBuilder pb;
    Assembler& a = pb.text();
    const uint64_t g = pb.AddDataU64({value});
    a.Load(Reg::kRdi, MemAbs(static_cast<int32_t>(g)));
    a.HostCall(HostFn::kOutputU64);
    pb.EmitExit(static_cast<int32_t>(value & 0xff));
    return pb.Finish();
  };
  const BinaryImage first = build(41);
  const BinaryImage second = build(77);
  for (const VmEngine engine : {VmEngine::kStep, VmEngine::kBlock}) {
    Vm vm;
    GlibcLikeAllocator alloc;
    vm.set_allocator(&alloc);
    vm.set_engine(engine);
    vm.LoadImage(first);
    const RunResult r1 = vm.Run();
    EXPECT_EQ(r1.exit_status, 41u);
    // Reload at the same addresses: decoded blocks and cached page
    // translations for the old image must not leak into this run.
    vm.LoadImage(second);
    const RunResult r2 = vm.Run();
    EXPECT_EQ(r2.exit_status, 77u);
    ASSERT_EQ(vm.outputs().size(), 2u);
    EXPECT_EQ(vm.outputs()[0], 41u);
    EXPECT_EQ(vm.outputs()[1], 77u);
  }
}

// The streaming-epoch hook fires at the same instruction boundaries under
// both engines, and chained deltas merge back to the one-shot snapshot.
TEST(VmEngine, EpochDeltasMergeToOneShot) {
  SynthParams p;
  p.seed = 99;
  p.churn_pct = 3;
  const BinaryImage img = GenerateSynthProgram(p);
  RedFatTool tool(RedFatOptions::Merge());
  Result<InstrumentResult> ir = tool.Instrument(img);
  ASSERT_TRUE(ir.ok()) << ir.error();

  std::vector<size_t> epoch_counts;
  std::vector<std::string> one_shots;
  for (const VmEngine engine : {VmEngine::kStep, VmEngine::kBlock}) {
    TelemetryRegistry telemetry;
    std::vector<TelemetrySnapshot> deltas;
    TelemetrySnapshot prev;
    RunConfig cfg;
    cfg.engine = engine;
    cfg.inputs = RefInputs(10);
    cfg.telemetry = &telemetry;
    cfg.metrics_epoch = 5000;
    cfg.on_epoch = [&]() {
      const TelemetrySnapshot cur = telemetry.Snapshot();
      deltas.push_back(DeltaTelemetrySnapshot(cur, prev));
      prev = cur;
    };
    const RunOutcome out = RunImage(ir.value().image, RuntimeKind::kRedFat, cfg);
    ASSERT_EQ(out.result.reason, HaltReason::kExit);
    ASSERT_FALSE(deltas.empty()) << "run too short to cross an epoch";
    // Closing epoch: everything after the last boundary, including the
    // harness's post-run counters.
    const TelemetrySnapshot final_snap = telemetry.Snapshot();
    deltas.push_back(DeltaTelemetrySnapshot(final_snap, prev));
    EXPECT_EQ(MergeTelemetrySnapshots(deltas).ToJson(), final_snap.ToJson())
        << "engine=" << static_cast<int>(engine);
    epoch_counts.push_back(deltas.size());
    one_shots.push_back(final_snap.ToJson());
  }
  // The hook fired at the same instruction boundaries in both engines and
  // observed identical state at each.
  EXPECT_EQ(epoch_counts[0], epoch_counts[1]);
  EXPECT_EQ(one_shots[0], one_shots[1]);
}

// ---- Chaining + trace-formation differential suite (ISSUE 8) ----

// A loop hot enough to pass kTraceThreshold, with an internal conditional
// branch so the body spans multiple superblocks (the trace gets interior
// guards) and a data-dependent side that diverges on the final iterations.
BinaryImage BuildHotLoop(uint64_t iters) {
  ProgramBuilder pb;
  Assembler& a = pb.text();
  a.MovRI(Reg::kR15, 0);
  a.MovRI(Reg::kR8, static_cast<int64_t>(iters));
  auto loop = a.NewLabel();
  auto skip = a.NewLabel();
  a.Bind(loop);
  a.CmpI(Reg::kR8, 3);
  a.Jcc(Cond::kUgt, skip);  // taken until the last three iterations
  a.AddI(Reg::kR15, 1000);
  a.Bind(skip);
  a.AddI(Reg::kR15, 2);
  a.SubI(Reg::kR8, 1);
  a.CmpI(Reg::kR8, 0);
  a.Jcc(Cond::kNe, loop);
  a.MovRR(Reg::kRdi, Reg::kR15);
  a.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

// Sanity: the hot-loop workload really does drive the chained engine into
// its steady state — links patched, blocks chained, at least one trace
// formed and run — so the limit/abort tests below genuinely land mid-chain
// and mid-trace rather than in cold dispatch.
TEST(VmChaining, HotLoopFormsChainsAndTraces) {
  const BinaryImage img = BuildHotLoop(400);
  RunConfig cfg;  // chained production defaults
  const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
  ASSERT_EQ(out.result.reason, HaltReason::kExit);
  ASSERT_EQ(out.outputs.size(), 1u);
  EXPECT_EQ(out.outputs[0], 3u * 1000u + 400u * 2u);
  EXPECT_GT(out.dispatch.links_patched, 0u);
  EXPECT_GT(out.dispatch.block_chains, 0u);
  EXPECT_GT(out.dispatch.traces_formed, 0u);
  EXPECT_GT(out.dispatch.trace_runs, 0u);
  EXPECT_EQ(out.dispatch.trace_len.Count(), out.dispatch.traces_formed);

  // And with chaining off the same run reports none of it.
  RunConfig off = cfg;
  off.chain = false;
  const RunOutcome out2 = RunImage(img, RuntimeKind::kBaseline, off);
  EXPECT_EQ(out2.outputs, out.outputs);
  EXPECT_EQ(out2.dispatch.block_chains, 0u);
  EXPECT_EQ(out2.dispatch.links_patched, 0u);
  EXPECT_EQ(out2.dispatch.traces_formed, 0u);
}

// The instruction limit must halt at the exact instruction even when it
// lands inside a chained block sequence or a baked multi-segment trace.
TEST(VmChaining, InstructionLimitMidChainAndMidTrace) {
  const BinaryImage img = BuildHotLoop(400);
  // Total instruction count from the reference stepper, then limits probing
  // the cold region, the chained-but-untraced region, deep mid-trace
  // territory, and every offset within one loop iteration (7 insns/iter).
  RunConfig probe;
  probe.engine = VmEngine::kStep;
  const RunOutcome ref = RunImage(img, RuntimeKind::kBaseline, probe);
  const uint64_t total = ref.result.instructions;
  ASSERT_GT(total, 1000u);
  std::vector<uint64_t> limits = {1, 2, 50, 200, 450, 451, total / 2, total - 1, total};
  for (uint64_t off = 0; off < 7; ++off) {
    limits.push_back(total / 2 + 100 + off);
  }
  for (const uint64_t limit : limits) {
    RunConfig cfg;
    cfg.instruction_limit = limit;
    ExpectEnginesAgree(img, RuntimeKind::kBaseline, cfg, /*observe=*/false,
                       StrFormat("hot-loop limit=%llu",
                                 static_cast<unsigned long long>(limit)));
  }
}

// A mem-error trap firing on the last iterations of a hot loop lands after
// chains and traces are formed; under kHarden the abort must stop at the
// identical instruction with the identical report, under kLog execution
// continues through the trace side-exit — in every mode.
TEST(VmChaining, MemErrorAbortMidChainAndMidTrace) {
  constexpr uint64_t kIters = 400;
  ProgramBuilder pb;
  Assembler& a = pb.text();
  a.MovRI(Reg::kR15, 0);
  a.MovRI(Reg::kR8, kIters);
  auto loop = a.NewLabel();
  auto skip = a.NewLabel();
  a.Bind(loop);
  a.CmpI(Reg::kR8, 2);
  a.Jcc(Cond::kUgt, skip);  // the hot path; falls through on iterations 2 and 1
  a.Trap(TrapCode::kMemError, PackErrorArg(9, ErrorKind::kBounds));
  a.Bind(skip);
  a.AddI(Reg::kR15, 2);
  a.SubI(Reg::kR8, 1);
  a.CmpI(Reg::kR8, 0);
  a.Jcc(Cond::kNe, loop);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  for (const Policy policy : {Policy::kHarden, Policy::kLog}) {
    RunConfig cfg;
    cfg.policy = policy;
    ExpectEnginesAgree(img, RuntimeKind::kBaseline, cfg, /*observe=*/false,
                       StrFormat("hot-loop trap policy=%d", static_cast<int>(policy)));
    // The trap really fired after the loop went hot.
    const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
    ASSERT_FALSE(out.errors.empty());
    EXPECT_GT(out.dispatch.block_chains, 0u);
  }
}

// Code-cache eviction under chaining: two hot call targets 4096 bytes apart
// share a direct-mapped slot, so every iteration evicts a block the previous
// iteration installed chain links to. Stale links must self-invalidate via
// the entry tag — never execute the evicting block's code.
TEST(VmChaining, CollisionEvictionInvalidatesChainLinks) {
  ProgramBuilder pb;
  Assembler& a = pb.text();
  auto f1 = a.NewLabel();
  auto f2 = a.NewLabel();
  auto main_l = a.NewLabel();
  a.Jmp(main_l);
  const uint64_t f1_addr = a.Here();
  a.Bind(f1);
  a.AddI(Reg::kR15, 1);
  a.Ret();
  while (a.Here() < f1_addr + 4096) {
    a.Nop();
  }
  ASSERT_EQ(a.Here(), f1_addr + 4096);
  a.Bind(f2);
  a.AddI(Reg::kR15, 3);
  a.Ret();
  a.Bind(main_l);
  a.MovRI(Reg::kR15, 0);
  a.MovRI(Reg::kR8, 500);
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Call(f1);
  a.Call(f2);
  a.SubI(Reg::kR8, 1);
  a.CmpI(Reg::kR8, 0);
  a.Jcc(Cond::kNe, loop);
  a.MovRR(Reg::kRdi, Reg::kR15);
  a.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  ExpectEnginesAgree(img, RuntimeKind::kBaseline, RunConfig{}, /*observe=*/false,
                     "chained collisions");
  RunConfig cfg;  // chained defaults
  const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
  ASSERT_EQ(out.outputs.size(), 1u);
  EXPECT_EQ(out.outputs[0], 2000u);
  EXPECT_GT(out.dispatch.code_cache_evictions, 0u);
  // Shrinking the cache to two entries makes *every* block collide; chains
  // still never go stale-wrong.
  RunConfig tiny = cfg;
  tiny.code_cache_size = 2;
  const RunOutcome out2 = RunImage(img, RuntimeKind::kBaseline, tiny);
  ASSERT_EQ(out2.outputs.size(), 1u);
  EXPECT_EQ(out2.outputs[0], 2000u);
  EXPECT_EQ(out2.result.instructions, out.result.instructions);
  EXPECT_EQ(out2.result.cycles, out.result.cycles);
  EXPECT_GT(out2.dispatch.code_cache_evictions, out.dispatch.code_cache_evictions);
}

// LoadImage while chains and traces are live: the second image overlays the
// same addresses, so any surviving link or trace would execute the first
// image's arithmetic. Runs hot loops so both images actually form traces.
TEST(VmChaining, LoadImageInvalidatesChainsAndTraces) {
  auto build = [](int64_t addend, uint64_t iters) {
    ProgramBuilder pb;
    Assembler& a = pb.text();
    a.MovRI(Reg::kR15, 0);
    a.MovRI(Reg::kR8, static_cast<int64_t>(iters));
    auto loop = a.NewLabel();
    a.Bind(loop);
    a.AddI(Reg::kR15, addend);
    a.SubI(Reg::kR8, 1);
    a.CmpI(Reg::kR8, 0);
    a.Jcc(Cond::kNe, loop);
    a.MovRR(Reg::kRdi, Reg::kR15);
    a.HostCall(HostFn::kOutputU64);
    pb.EmitExit(0);
    return pb.Finish();
  };
  const BinaryImage first = build(7, 300);
  const BinaryImage second = build(11, 200);
  Vm vm;
  GlibcLikeAllocator alloc;
  vm.set_allocator(&alloc);
  vm.LoadImage(first);
  const RunResult r1 = vm.Run();
  ASSERT_EQ(r1.reason, HaltReason::kExit);
  EXPECT_GT(vm.dispatch_stats().block_chains, 0u);
  vm.LoadImage(second);
  const RunResult r2 = vm.Run();
  ASSERT_EQ(r2.reason, HaltReason::kExit);
  ASSERT_EQ(vm.outputs().size(), 2u);
  EXPECT_EQ(vm.outputs()[0], 7u * 300u);
  EXPECT_EQ(vm.outputs()[1], 11u * 200u);
}

// Attaching a per-instruction observer must transparently fall back to
// unchained, unspecialized dispatch — same guest results, observer fired
// once per instruction, zero chains formed even with chaining requested.
TEST(VmChaining, ObserverForcesUnchainedFallback) {
  class CountingObserver : public ExecObserver {
   public:
    uint64_t OnInstruction(Vm&, uint64_t, const Instruction&) override {
      ++count;
      return 0;
    }
    uint64_t count = 0;
  };
  const BinaryImage img = BuildHotLoop(400);
  uint64_t counts[2] = {0, 0};
  RunFingerprint fps[2];
  const VmEngine engines[2] = {VmEngine::kStep, VmEngine::kBlock};
  for (int i = 0; i < 2; ++i) {
    CountingObserver obs;
    RunConfig cfg;  // chain + specialize left at production defaults
    cfg.engine = engines[i];
    cfg.observer = &obs;
    const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
    fps[i] = Fingerprint(out, "", "");
    counts[i] = obs.count;
    EXPECT_EQ(out.dispatch.block_chains, 0u) << "engine=" << i;
    EXPECT_EQ(out.dispatch.traces_formed, 0u) << "engine=" << i;
    EXPECT_EQ(obs.count, out.result.instructions) << "engine=" << i;
  }
  EXPECT_EQ(fps[0].result, fps[1].result);
  EXPECT_EQ(fps[0].outputs, fps[1].outputs);
  EXPECT_EQ(counts[0], counts[1]);
}

// The cache-size knob: rejects zero and non-powers-of-two via REDFAT_CHECK
// (covered by rfrun's exit-2 validation at the CLI layer); accepted sizes
// keep bit-identity — checked here across a drastic down-size.
TEST(VmChaining, CodeCacheSizeKnobKeepsIdentity) {
  const BinaryImage img = BuildHotLoop(300);
  RunConfig ref_cfg;
  ref_cfg.engine = VmEngine::kStep;
  const RunOutcome ref = RunImage(img, RuntimeKind::kBaseline, ref_cfg);
  for (const size_t entries : {size_t{1}, size_t{8}, size_t{131072}}) {
    RunConfig cfg;
    cfg.code_cache_size = entries;
    const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
    EXPECT_EQ(out.result.instructions, ref.result.instructions) << entries;
    EXPECT_EQ(out.result.cycles, ref.result.cycles) << entries;
    EXPECT_EQ(out.outputs, ref.outputs) << entries;
  }
}

}  // namespace
}  // namespace redfat
