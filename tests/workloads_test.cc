#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/dbi/memcheck.h"
#include "src/workloads/cve.h"
#include "src/workloads/kraken.h"
#include "src/workloads/spec.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

TEST(Synth, DeterministicPerSeed) {
  SynthParams p;
  p.seed = 42;
  const BinaryImage a = GenerateSynthProgram(p);
  const BinaryImage b = GenerateSynthProgram(p);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  p.seed = 43;
  EXPECT_NE(GenerateSynthProgram(p).Serialize(), a.Serialize());
}

TEST(Synth, RunsCleanUnderBaseline) {
  SynthParams p;
  p.seed = 7;
  p.churn_pct = 3;
  const BinaryImage img = GenerateSynthProgram(p);
  RunConfig cfg;
  cfg.inputs = RefInputs(20);
  const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit) << out.result.fault_message;
  EXPECT_EQ(out.result.exit_status, 0u);
  ASSERT_EQ(out.outputs.size(), 1u);
}

TEST(Synth, ChecksumIsAllocatorIndependent) {
  SynthParams p;
  p.seed = 11;
  p.churn_pct = 4;
  const BinaryImage img = GenerateSynthProgram(p);
  RunConfig cfg;
  cfg.inputs = RefInputs(25);
  const RunOutcome glibc = RunImage(img, RuntimeKind::kBaseline, cfg);
  const RunOutcome redfat = RunImage(img, RuntimeKind::kRedFat, cfg);
  const RunOutcome memcheck = RunMemcheck(img, cfg);
  EXPECT_EQ(glibc.outputs, redfat.outputs);
  EXPECT_EQ(glibc.outputs, memcheck.outputs);
}

// THE central soundness property: for arbitrary generated programs with no
// real memory errors and no anti-idioms, full (Redzone)+(LowFat) hardening
// must neither abort nor change behaviour — across program shapes, runtimes
// and optimization levels.
class SynthHardeningProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SynthHardeningProperty, HardenedEqualsBaseline) {
  SynthParams p;
  p.seed = GetParam();
  p.num_objects = 4 + GetParam() % 7;
  p.churn_pct = (GetParam() % 3 == 0) ? 4 : 0;
  p.max_accesses_per_ptr = 1 + GetParam() % 8;
  p.mem_pct = 20 + GetParam() % 25;
  p.indexed_pct = 30 + GetParam() % 60;
  const BinaryImage img = GenerateSynthProgram(p);
  RunConfig cfg;
  cfg.inputs = RefInputs(12);
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  ASSERT_EQ(base.result.reason, HaltReason::kExit) << base.result.fault_message;

  for (const RedFatOptions& opts :
       {RedFatOptions::Unoptimized(), RedFatOptions::Merge(), RedFatOptions::NoReads()}) {
    RedFatTool tool(opts);
    Result<InstrumentResult> ir = tool.Instrument(img);
    ASSERT_TRUE(ir.ok()) << ir.error();
    const RunOutcome hard = RunImage(ir.value().image, RuntimeKind::kRedFat, cfg);
    ASSERT_EQ(hard.result.reason, HaltReason::kExit)
        << "seed=" << GetParam() << ": " << hard.result.fault_message;
    ASSERT_EQ(hard.outputs, base.outputs) << "seed=" << GetParam();
    ASSERT_TRUE(hard.errors.empty()) << "seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthHardeningProperty, ::testing::Range<uint64_t>(1, 25));

TEST(Synth, AntiIdiomWorkflowEndToEnd) {
  SynthParams p;
  p.seed = 5;
  p.anti_idiom_sites = 3;
  p.anti_idiom_pct = 20;
  const BinaryImage img = GenerateSynthProgram(p);

  // Full-on: false positives appear (log mode).
  RedFatTool full(RedFatOptions{});
  const InstrumentResult ir_full = full.Instrument(img).value();
  RunConfig ref;
  ref.inputs = RefInputs(30);
  ref.policy = Policy::kLog;
  const RunOutcome fp_run = RunImage(ir_full.image, RuntimeKind::kRedFat, ref);
  EXPECT_EQ(fp_run.result.reason, HaltReason::kExit);
  EXPECT_FALSE(fp_run.errors.empty());

  // Two-phase workflow: profile on train, harden, run ref clean.
  RedFatTool prof(RedFatOptions::Profile());
  const InstrumentResult ir_prof = prof.Instrument(img).value();
  RunConfig train;
  train.inputs = TrainInputs(30);
  train.policy = Policy::kLog;
  const RunOutcome prof_run = RunImage(ir_prof.image, RuntimeKind::kRedFat, train);
  ASSERT_EQ(prof_run.result.reason, HaltReason::kExit);
  const AllowList allow = BuildAllowList(prof_run.prof_counts, ir_prof.sites);

  const InstrumentResult ir_hard = full.Instrument(img, &allow).value();
  RunConfig prod;
  prod.inputs = RefInputs(30);
  const RunOutcome prod_run = RunImage(ir_hard.image, RuntimeKind::kRedFat, prod);
  EXPECT_EQ(prod_run.result.reason, HaltReason::kExit) << "no production false abort";
  EXPECT_TRUE(prod_run.errors.empty());
}

TEST(Synth, RefOnlyBlocksLowerCoverage) {
  SynthParams p;
  p.seed = 9;
  p.ref_only_pct = 60;
  const BinaryImage img = GenerateSynthProgram(p);
  RedFatTool prof(RedFatOptions::Profile());
  const InstrumentResult ir_prof = prof.Instrument(img).value();
  RunConfig train;
  train.inputs = TrainInputs(40);
  train.policy = Policy::kLog;
  const RunOutcome prof_run = RunImage(ir_prof.image, RuntimeKind::kRedFat, train);
  const AllowList allow = BuildAllowList(prof_run.prof_counts, ir_prof.sites);

  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(img, &allow).value();
  RunConfig ref;
  ref.inputs = RefInputs(40);
  const RunOutcome run = RunImage(ir.image, RuntimeKind::kRedFat, ref);
  ASSERT_EQ(run.result.reason, HaltReason::kExit);
  const CoverageStats cov = ComputeCoverage(run.counters, ir.sites);
  EXPECT_GT(cov.redzone_only, 0u) << "ref-only sites were never profiled";
  EXPECT_LT(cov.FullFraction(), 0.85);
  EXPECT_GT(cov.FullFraction(), 0.10);
}

TEST(Server, DeterministicPerSeed) {
  ServerParams p;
  p.seed = 21;
  const BinaryImage a = GenerateServerProgram(p);
  const BinaryImage b = GenerateServerProgram(p);
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(Server, RunsCleanWithSustainedChurn) {
  ServerParams p;
  p.seed = 3;
  const BinaryImage img = GenerateServerProgram(p);
  RunConfig cfg;
  cfg.inputs = {400};  // requests
  const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
  ASSERT_EQ(out.result.reason, HaltReason::kExit) << out.result.fault_message;
  EXPECT_EQ(out.result.exit_status, 0u);
  ASSERT_EQ(out.outputs.size(), 1u);
  // 400 producer mallocs and 400 consumer frees actually happened: the
  // live set stays bounded by the ring, so the footprint is far below the
  // sum of all request sizes.
  EXPECT_GT(out.result.explicit_reads, 400u);
  // Same seed, same request count, same checksum on a rerun.
  const RunOutcome again = RunImage(img, RuntimeKind::kBaseline, cfg);
  EXPECT_EQ(out.outputs, again.outputs);
  // More requests, different checksum.
  RunConfig more;
  more.inputs = {401};
  EXPECT_NE(RunImage(img, RuntimeKind::kBaseline, more).outputs, out.outputs);
}

TEST(Server, HardenedEqualsBaselineAcrossRuntimes) {
  // The server checksum is allocator-independent and the workload has no
  // real memory errors: hardened and DBI runs must match baseline exactly
  // and report nothing, despite heavy malloc/free interleaving.
  ServerParams p;
  p.seed = 13;
  const BinaryImage img = GenerateServerProgram(p);
  RunConfig cfg;
  cfg.inputs = {300};
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  ASSERT_EQ(base.result.reason, HaltReason::kExit) << base.result.fault_message;

  for (const RedFatOptions& opts :
       {RedFatOptions::Unoptimized(), RedFatOptions::Merge()}) {
    RedFatTool tool(opts);
    Result<InstrumentResult> ir = tool.Instrument(img);
    ASSERT_TRUE(ir.ok()) << ir.error();
    const RunOutcome hard = RunImage(ir.value().image, RuntimeKind::kRedFat, cfg);
    ASSERT_EQ(hard.result.reason, HaltReason::kExit) << hard.result.fault_message;
    EXPECT_EQ(hard.outputs, base.outputs);
    EXPECT_TRUE(hard.errors.empty());
  }
  const RunOutcome memcheck = RunMemcheck(img, cfg);
  ASSERT_EQ(memcheck.result.reason, HaltReason::kExit);
  EXPECT_EQ(memcheck.outputs, base.outputs);
  EXPECT_TRUE(memcheck.errors.empty());
}

TEST(Spec, SuiteHas29UniqueBenchmarks) {
  const auto& suite = SpecSuite();
  ASSERT_EQ(suite.size(), 29u);
  std::set<std::string> names;
  for (const auto& b : suite) {
    names.insert(b.name);
  }
  EXPECT_EQ(names.size(), 29u);
}

TEST(Spec, EveryBenchmarkBuildsAndRuns) {
  for (const SpecBenchmark& b : SpecSuite()) {
    const BinaryImage img = BuildSpecBenchmark(b);
    RunConfig cfg;
    cfg.inputs = RefInputs(3);
    cfg.policy = Policy::kLog;
    const RunOutcome out = RunImage(img, RuntimeKind::kBaseline, cfg);
    ASSERT_EQ(out.result.reason, HaltReason::kExit)
        << b.name << ": " << out.result.fault_message;
    ASSERT_EQ(out.result.exit_status, 0u) << b.name;
  }
}

TEST(Spec, LatentBugsAreDetectedByBothTools) {
  const SpecBenchmark* calculix = nullptr;
  for (const auto& b : SpecSuite()) {
    if (b.name == "calculix") {
      calculix = &b;
    }
  }
  ASSERT_NE(calculix, nullptr);
  const BinaryImage img = BuildSpecBenchmark(*calculix);
  RunConfig cfg;
  cfg.inputs = RefInputs(2);
  cfg.policy = Policy::kLog;

  RedFatTool tool(RedFatOptions{});
  const InstrumentResult ir = tool.Instrument(img).value();
  const RunOutcome rf = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  std::set<uint32_t> sites;
  for (const auto& e : rf.errors) {
    sites.insert(e.site);
  }
  EXPECT_GE(sites.size(), 4u) << "the four array[-1] underflows must be reported";

  const RunOutcome mc = RunMemcheck(img, cfg);
  EXPECT_GE(mc.errors.size(), 4u) << "Memcheck sees redzone reads too";
}

TEST(Cve, AllFourDetectedByRedFatMissedByMemcheck) {
  for (const VulnCase& c : CveCases()) {
    RedFatTool tool(RedFatOptions{});
    const InstrumentResult ir = tool.Instrument(c.image).value();

    RunConfig attack;
    attack.inputs = c.attack_inputs;
    const RunOutcome rf = RunImage(ir.image, RuntimeKind::kRedFat, attack);
    EXPECT_EQ(rf.result.reason, HaltReason::kMemErrorAbort) << c.name;

    RunConfig benign;
    benign.inputs = c.benign_inputs;
    const RunOutcome rf_ok = RunImage(ir.image, RuntimeKind::kRedFat, benign);
    EXPECT_EQ(rf_ok.result.reason, HaltReason::kExit) << c.name;

    RunConfig mc_cfg;
    mc_cfg.inputs = c.attack_inputs;
    mc_cfg.policy = Policy::kLog;
    const RunOutcome mc = RunMemcheck(c.image, mc_cfg);
    EXPECT_EQ(mc.result.reason, HaltReason::kExit) << c.name;
    EXPECT_TRUE(mc.errors.empty()) << c.name << ": Memcheck should miss the skip";
  }
}

TEST(Cve, JulietSuiteShapeAndSpotChecks) {
  const std::vector<VulnCase> cases = JulietCwe122Cases();
  ASSERT_EQ(cases.size(), 480u);
  // Spot-check one case per element size (the full 480x2 matrix runs in the
  // bench harness).
  for (size_t i : {0u, 150u, 300u, 450u}) {
    const VulnCase& c = cases[i];
    RedFatTool tool(RedFatOptions{});
    const InstrumentResult ir = tool.Instrument(c.image).value();
    RunConfig attack;
    attack.inputs = c.attack_inputs;
    EXPECT_EQ(RunImage(ir.image, RuntimeKind::kRedFat, attack).result.reason,
              HaltReason::kMemErrorAbort)
        << c.name;
    RunConfig mc_cfg;
    mc_cfg.inputs = c.attack_inputs;
    mc_cfg.policy = Policy::kLog;
    const RunOutcome mc = RunMemcheck(c.image, mc_cfg);
    EXPECT_TRUE(mc.errors.empty()) << c.name;
    RunConfig benign;
    benign.inputs = c.benign_inputs;
    EXPECT_EQ(RunImage(ir.image, RuntimeKind::kRedFat, benign).result.reason,
              HaltReason::kExit)
        << c.name;
  }
}

TEST(Kraken, SuiteBuildsAndRunsHardened) {
  const auto& suite = KrakenSuite();
  ASSERT_EQ(suite.size(), 14u);
  const KrakenBenchmark& b = suite.front();
  const BinaryImage img = BuildKrakenBenchmark(b);
  EXPECT_GT(img.TotalBytes(), 50'000u) << "the Chrome stand-in must be large";
  RedFatTool tool(RedFatOptions::NoReads());
  const InstrumentResult ir = tool.Instrument(img).value();
  RunConfig cfg;
  cfg.inputs = RefInputs(10);
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(base.result.reason, HaltReason::kExit);
  EXPECT_EQ(hard.result.reason, HaltReason::kExit) << hard.result.fault_message;
  EXPECT_EQ(base.outputs, hard.outputs);
}

}  // namespace
}  // namespace redfat
