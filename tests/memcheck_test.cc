#include <gtest/gtest.h>

#include "src/dbi/memcheck.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

// p = malloc(64); q = malloc(64); p[input()] = 1 (8-byte elements).
BinaryImage IndexedWriteProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.HostCall(HostFn::kInputU64);
  as.MovRI(Reg::kR14, 1);
  as.Store(Reg::kR14, MemBIS(Reg::kR12, Reg::kRax, 3, 0));
  pb.EmitExit(0);
  return pb.Finish();
}

TEST(Memcheck, CleanProgramNoReports) {
  RunConfig cfg;
  cfg.inputs = {2};
  const RunOutcome out = RunMemcheck(IndexedWriteProgram(), cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  EXPECT_TRUE(out.errors.empty());
}

TEST(Memcheck, DetectsRedzoneHit) {
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.inputs = {8};  // p[8] -> trailing redzone
  const RunOutcome out = RunMemcheck(IndexedWriteProgram(), cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kBounds);
}

TEST(Memcheck, MissesRedzoneSkippingOverflow) {
  // Memcheck chunk stride for 64-byte payloads: AlignUp(16+16+64+16,16)=112,
  // payload at +32. Index 14 -> byte offset 112 = next chunk's payload.
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.inputs = {14};
  const RunOutcome out = RunMemcheck(IndexedWriteProgram(), cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  EXPECT_TRUE(out.errors.empty()) << "redzone-only checking cannot see the skip";
}

TEST(Memcheck, DetectsUseAfterFree) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 32);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRR(Reg::kRdi, Reg::kRax);
  as.HostCall(HostFn::kFree);
  as.Load(Reg::kRax, MemAt(Reg::kR12, 0));
  pb.EmitExit(0);
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  const RunOutcome out = RunMemcheck(pb.Finish(), cfg);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, ErrorKind::kUaf);
}

TEST(Memcheck, HardenPolicyAborts) {
  RunConfig cfg;
  cfg.policy = Policy::kHarden;
  cfg.inputs = {8};
  const RunOutcome out = RunMemcheck(IndexedWriteProgram(), cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
}

TEST(Memcheck, DispatchCostDominates) {
  // A loop-heavy program (not dominated by hostcall costs): the DBI
  // dispatch constant must make it several times slower than native.
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRcx, 0);
  auto loop = as.NewLabel();
  as.Bind(loop);
  as.Store(Reg::kRcx, MemAt(Reg::kR12, 0));
  as.Load(Reg::kRax, MemAt(Reg::kR12, 0));
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 500);
  as.Jcc(Cond::kUlt, loop);
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  RunConfig cfg;
  const RunOutcome mc = RunMemcheck(img, cfg);
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  EXPECT_EQ(mc.outputs, base.outputs);
  EXPECT_GT(mc.result.cycles, 3 * base.result.cycles)
      << "DBI must be much slower than native";
}

TEST(Memcheck, ShadowStateLifecycle) {
  Memory mem;
  Memcheck mc;
  const uint64_t p = mc.Malloc(mem, 40).ptr;
  ASSERT_NE(p, 0u);
  EXPECT_EQ(mc.shadow().Query(p), ShadowState::kAllocated);
  EXPECT_EQ(mc.shadow().Query(p + 39), ShadowState::kAllocated);
  EXPECT_EQ(mc.shadow().Query(p - 8), ShadowState::kRedzone);
  EXPECT_EQ(mc.shadow().Query(p + 40), ShadowState::kRedzone);
  mc.Free(mem, p);
  EXPECT_EQ(mc.shadow().Query(p), ShadowState::kFree);
  // Quarantined: immediate re-malloc must not hand back p.
  EXPECT_NE(mc.Malloc(mem, 40).ptr, p);
}

TEST(ShadowMap, MarkAndQueryRanges) {
  ShadowMap shadow;
  shadow.Mark(0x1000, 64, ShadowState::kAllocated);
  shadow.Mark(0x1040, 16, ShadowState::kRedzone);
  EXPECT_EQ(shadow.Query(0x0), ShadowState::kDefault);
  EXPECT_EQ(shadow.Query(0x1000), ShadowState::kAllocated);
  EXPECT_EQ(shadow.QueryRange(0x1038, 8), ShadowState::kAllocated);
  EXPECT_EQ(shadow.QueryRange(0x1038, 16), ShadowState::kRedzone)
      << "a straddling access must see the redzone";
  shadow.Mark(0x1000, 64, ShadowState::kFree);
  EXPECT_EQ(shadow.QueryRange(0x1000, 8), ShadowState::kFree);
}

}  // namespace
}  // namespace redfat
