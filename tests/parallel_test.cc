// Tests for support/parallel.h: exactly-once index coverage across job
// counts, degenerate sizes, and exception propagation to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/support/parallel.h"

namespace redfat {
namespace {

TEST(ParallelTest, ResolveJobsMapsZeroToHardware) {
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
  EXPECT_GE(HardwareJobs(), 1u);
  EXPECT_EQ(ResolveJobs(1), 1u);
  EXPECT_EQ(ResolveJobs(7), 7u);
}

void ExpectEveryIndexExactlyOnce(unsigned jobs, size_t n) {
  std::vector<std::atomic<uint32_t>> hits(n);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(jobs, n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "jobs=" << jobs << " n=" << n << " i=" << i;
  }
}

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (unsigned jobs : {0u, 1u, 2u, 4u, 16u}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{64},
                     size_t{1000}}) {
      ExpectEveryIndexExactlyOnce(jobs, n);
    }
  }
}

TEST(ParallelTest, MoreJobsThanItemsStillCoversAll) {
  ExpectEveryIndexExactlyOnce(/*jobs=*/32, /*n=*/5);
}

TEST(ParallelTest, ZeroItemsNeverInvokesFn) {
  ParallelFor(4, 0, [](size_t) { FAIL() << "fn called for empty range"; });
}

TEST(ParallelTest, InlinePathPreservesOrder) {
  // jobs <= 1 runs on the calling thread in ascending index order.
  std::vector<size_t> order;
  ParallelFor(1, 8, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelTest, RethrowsExceptionFromInlinePath) {
  EXPECT_THROW(
      ParallelFor(1, 4,
                  [](size_t i) {
                    if (i == 2) {
                      throw std::runtime_error("boom");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelTest, RethrowsFirstExceptionFromWorkers) {
  std::atomic<size_t> ran{0};
  try {
    ParallelFor(4, 1000, [&ran](size_t i) {
      if (i == 10) {
        throw std::runtime_error("worker failure");
      }
      ran.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failure");
  }
  // The queue is drained on failure: some subset of [0, n) ran, never more.
  EXPECT_LT(ran.load(), 1000u);
}

TEST(ParallelTest, ExceptionLeavesPoolReusable) {
  // A throw must join all workers; subsequent calls behave normally.
  EXPECT_THROW(
      ParallelFor(4, 100, [](size_t) { throw std::logic_error("once"); }),
      std::logic_error);
  ExpectEveryIndexExactlyOnce(4, 100);
}

}  // namespace
}  // namespace redfat
