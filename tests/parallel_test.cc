// Tests for support/parallel.h: exactly-once index coverage across job
// counts, degenerate sizes, and exception propagation to the caller.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/support/parallel.h"

namespace redfat {
namespace {

TEST(ParallelTest, ResolveJobsMapsZeroToHardware) {
  EXPECT_EQ(ResolveJobs(0), HardwareJobs());
  EXPECT_GE(HardwareJobs(), 1u);
  EXPECT_EQ(ResolveJobs(1), 1u);
  EXPECT_EQ(ResolveJobs(7), 7u);
}

void ExpectEveryIndexExactlyOnce(unsigned jobs, size_t n) {
  std::vector<std::atomic<uint32_t>> hits(n);
  for (auto& h : hits) {
    h.store(0);
  }
  ParallelFor(jobs, n, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "jobs=" << jobs << " n=" << n << " i=" << i;
  }
}

TEST(ParallelTest, CoversEveryIndexExactlyOnce) {
  for (unsigned jobs : {0u, 1u, 2u, 4u, 16u}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{64},
                     size_t{1000}}) {
      ExpectEveryIndexExactlyOnce(jobs, n);
    }
  }
}

TEST(ParallelTest, MoreJobsThanItemsStillCoversAll) {
  ExpectEveryIndexExactlyOnce(/*jobs=*/32, /*n=*/5);
}

TEST(ParallelTest, ZeroItemsNeverInvokesFn) {
  ParallelFor(4, 0, [](size_t) { FAIL() << "fn called for empty range"; });
}

TEST(ParallelTest, InlinePathPreservesOrder) {
  // jobs <= 1 runs on the calling thread in ascending index order.
  std::vector<size_t> order;
  ParallelFor(1, 8, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelTest, RethrowsExceptionFromInlinePath) {
  EXPECT_THROW(
      ParallelFor(1, 4,
                  [](size_t i) {
                    if (i == 2) {
                      throw std::runtime_error("boom");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelTest, RethrowsFirstExceptionFromWorkers) {
  std::atomic<size_t> ran{0};
  try {
    ParallelFor(4, 1000, [&ran](size_t i) {
      if (i == 10) {
        throw std::runtime_error("worker failure");
      }
      ran.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failure");
  }
  // The queue is drained on failure: some subset of [0, n) ran, never more.
  EXPECT_LT(ran.load(), 1000u);
}

TEST(ParallelTest, ExceptionLeavesPoolReusable) {
  // A throw must join all workers; subsequent calls behave normally.
  EXPECT_THROW(
      ParallelFor(4, 100, [](size_t) { throw std::logic_error("once"); }),
      std::logic_error);
  ExpectEveryIndexExactlyOnce(4, 100);
}

// --- chunked variant --------------------------------------------------------

TEST(ParallelChunkedTest, ChunksExactlyPartitionTheRange) {
  for (unsigned jobs : {1u, 2u, 4u}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64}, size_t{1001}}) {
      for (size_t grain : {size_t{0}, size_t{1}, size_t{3}, size_t{64}, size_t{5000}}) {
        std::vector<std::atomic<uint32_t>> hits(n);
        for (auto& h : hits) {
          h.store(0);
        }
        ParallelForChunked(jobs, n, grain, [&](size_t begin, size_t end) {
          ASSERT_LT(begin, end);
          ASSERT_LE(end, n);
          for (size_t i = begin; i < end; ++i) {
            hits[i].fetch_add(1);
          }
        });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1u)
              << "jobs=" << jobs << " n=" << n << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelChunkedTest, ChunksNeverExceedGrain) {
  ParallelForChunked(4, 1000, 37, [](size_t begin, size_t end) {
    EXPECT_LE(end - begin, size_t{37});
  });
}

TEST(ParallelChunkedTest, PartitionIsScheduleIndependent) {
  // The (begin, end) chunk set must be a pure function of (n, grain):
  // collect it at jobs=1 and jobs=8 and compare as sets.
  auto collect = [](unsigned jobs) {
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    ParallelForChunked(jobs, 500, 64, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(collect(1), collect(8));
}

// --- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.jobs(), 4u);
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{1000}}) {
    std::vector<std::atomic<uint32_t>> hits(n);
    for (auto& h : hits) {
      h.store(0);
    }
    pool.ParallelFor(n, [&hits](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  // The whole point of the pool: many loops, one set of workers. Run enough
  // regions that a spawn-per-region implementation would be obvious, and
  // verify totals.
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(64, [&total](size_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 200ull * (63ull * 64ull / 2));
}

TEST(ThreadPoolTest, NestedRegionsRunInline) {
  // A worker reaching another ParallelFor must execute it serially on its
  // own thread (no deadlock, no oversubscription) — for nesting on the same
  // pool, on another pool, and on the free function.
  ThreadPool pool(4);
  ThreadPool other(2);
  std::atomic<uint64_t> inner_hits{0};
  pool.ParallelFor(8, [&](size_t) {
    EXPECT_TRUE(ThreadPool::OnParallelThread());
    pool.ParallelFor(16, [&](size_t) { inner_hits.fetch_add(1); });
    other.ParallelFor(16, [&](size_t) { inner_hits.fetch_add(1); });
    ParallelFor(4, 16, [&](size_t) { inner_hits.fetch_add(1); });
  });
  EXPECT_EQ(inner_hits.load(), 8u * 3u * 16u);
  EXPECT_FALSE(ThreadPool::OnParallelThread());
}

TEST(ThreadPoolTest, InParallelRegionTracksActiveRegions) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InParallelRegion());
  std::atomic<bool> seen_active{false};
  pool.ParallelFor(64, [&](size_t) {
    if (pool.InParallelRegion()) {
      seen_active.store(true);
    }
  });
  EXPECT_TRUE(seen_active.load());
  EXPECT_FALSE(pool.InParallelRegion());
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    try {
      pool.ParallelFor(500, [](size_t i) {
        if (i == 123) {
          throw std::runtime_error("pool failure");
        }
      });
      FAIL() << "expected rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "pool failure");
    }
    // The pool must still work after the throw.
    std::atomic<uint32_t> ok{0};
    pool.ParallelFor(100, [&ok](size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 100u);
  }
}

TEST(ThreadPoolTest, ChunkedHonorsGrainAndPartition) {
  ThreadPool pool(4);
  std::vector<std::atomic<uint32_t>> hits(777);
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelForChunked(777, 50, [&](size_t begin, size_t end) {
    EXPECT_LE(end - begin, size_t{50});
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << i;
  }
}

TEST(ThreadPoolTest, SingleJobPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(8, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace redfat
