// Full Table-2 detection matrix as a test: all 480 Juliet CWE-122 cases
// must be detected by RedFat, missed by Memcheck, and pass their benign
// inputs under hardening. (The bench prints the table; this enforces it.)
#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/dbi/memcheck.h"
#include "src/workloads/cve.h"

namespace redfat {
namespace {

TEST(JulietFull, AllCasesBehaveAsTable2) {
  const std::vector<VulnCase> cases = JulietCwe122Cases();
  ASSERT_EQ(cases.size(), 480u);
  unsigned redfat_detected = 0;
  unsigned memcheck_detected = 0;
  unsigned benign_clean = 0;
  RedFatTool tool(RedFatOptions{});
  for (const VulnCase& c : cases) {
    Result<InstrumentResult> ir = tool.Instrument(c.image);
    ASSERT_TRUE(ir.ok()) << c.name;

    RunConfig attack;
    attack.inputs = c.attack_inputs;
    if (RunImage(ir.value().image, RuntimeKind::kRedFat, attack).result.reason ==
        HaltReason::kMemErrorAbort) {
      ++redfat_detected;
    } else {
      ADD_FAILURE() << c.name << ": RedFat missed the attack";
    }

    RunConfig benign;
    benign.inputs = c.benign_inputs;
    if (RunImage(ir.value().image, RuntimeKind::kRedFat, benign).result.reason ==
        HaltReason::kExit) {
      ++benign_clean;
    } else {
      ADD_FAILURE() << c.name << ": benign input rejected";
    }

    RunConfig mc;
    mc.inputs = c.attack_inputs;
    mc.policy = Policy::kLog;
    if (!RunMemcheck(c.image, mc).errors.empty()) {
      ++memcheck_detected;
      ADD_FAILURE() << c.name << ": Memcheck unexpectedly detected the skip";
    }
  }
  EXPECT_EQ(redfat_detected, 480u);
  EXPECT_EQ(memcheck_detected, 0u);
  EXPECT_EQ(benign_clean, 480u);
}

TEST(JulietFull, ReadCasesLeakWithoutHardening) {
  // Sanity on the threat model: for a read case, the unhardened binary
  // leaks a neighbor's byte pattern to the output.
  for (const VulnCase& c : JulietCwe122Cases()) {
    if (c.is_write) {
      continue;
    }
    RunConfig attack;
    attack.inputs = c.attack_inputs;
    const RunOutcome out = RunImage(c.image, RuntimeKind::kBaseline, attack);
    ASSERT_EQ(out.result.reason, HaltReason::kExit) << c.name;
    ASSERT_EQ(out.outputs.size(), 1u) << c.name;
    EXPECT_NE(out.outputs[0], 0u) << c.name << ": expected leaked neighbor data";
    break;  // one representative suffices
  }
}

}  // namespace
}  // namespace redfat
