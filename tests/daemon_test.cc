// Tests for the rewrite-as-a-service subsystem (src/serve): option
// fingerprinting, the content-addressed artifact cache, the warm
// RewriteService (hit / miss / incremental re-tier, all byte-identical to
// offline rewrites), and the redfatd daemon end-to-end over a real
// Unix-domain socket, including malformed-frame handling.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/core/sitemap.h"
#include "src/serve/cache.h"
#include "src/serve/client.h"
#include "src/serve/daemon.h"
#include "src/serve/fingerprint.h"
#include "src/serve/protocol.h"
#include "src/serve/service.h"
#include "src/support/parallel.h"
#include "src/support/str.h"
#include "src/support/telemetry.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

BinaryImage SynthImage(uint64_t seed) {
  SynthParams params;
  params.seed = seed;
  return GenerateSynthProgram(params);
}

struct OfflineResult {
  std::vector<uint8_t> image_bytes;
  std::string sitemap;
};

// What the daemon must be byte-identical to: a fresh in-process rewrite.
OfflineResult OfflineRewrite(const BinaryImage& input, const RedFatOptions& opts) {
  RedFatTool tool(opts);
  Result<InstrumentResult> out = tool.Instrument(input);
  EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error());
  OfflineResult r;
  r.image_bytes = out.value().image.Serialize();
  r.sitemap = SerializeSiteMap(out.value().sites, nullptr);
  return r;
}

// A --metrics-style snapshot JSON from actually running the untiered
// hardened image — the profile payload a client would upload.
std::string ProfileJsonFromRun(const BinaryImage& hardened) {
  TelemetryRegistry reg;
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  cfg.telemetry = &reg;
  cfg.inputs = {50, 0x3f};  // synth programs: iterations, unit-mix mode
  const RunOutcome out = RunImage(hardened, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  return reg.Snapshot().ToJson();
}

// --- option fingerprinting ---------------------------------------------------

// Every field of RedFatOptions must perturb the fingerprint. When the
// sizeof static_assert in fingerprint.cc fires and a field is added to the
// blob, it must be added here too.
TEST(OptionsFingerprint, EveryFieldPerturbsTheHash) {
  const RedFatOptions base;
  const TierProfile dummy_profile;
  struct Perturbation {
    const char* field;
    void (*apply)(RedFatOptions*, const TierProfile*);
  };
  const Perturbation perturbations[] = {
      {"check_reads", [](RedFatOptions* o, const TierProfile*) { o->check_reads = false; }},
      {"check_writes", [](RedFatOptions* o, const TierProfile*) { o->check_writes = false; }},
      {"redzone_impl",
       [](RedFatOptions* o, const TierProfile*) { o->redzone_impl = RedzoneImpl::kShadow; }},
      {"lowfat", [](RedFatOptions* o, const TierProfile*) { o->lowfat = false; }},
      {"size_hardening",
       [](RedFatOptions* o, const TierProfile*) { o->size_hardening = false; }},
      {"redzone_only_sites",
       [](RedFatOptions* o, const TierProfile*) { o->redzone_only_sites = false; }},
      {"merged_ub", [](RedFatOptions* o, const TierProfile*) { o->merged_ub = false; }},
      {"elim", [](RedFatOptions* o, const TierProfile*) { o->elim = false; }},
      {"batch", [](RedFatOptions* o, const TierProfile*) { o->batch = false; }},
      {"merge", [](RedFatOptions* o, const TierProfile*) { o->merge = false; }},
      {"clobber_analysis",
       [](RedFatOptions* o, const TierProfile*) { o->clobber_analysis = false; }},
      {"jobs", [](RedFatOptions* o, const TierProfile*) { o->jobs = 7; }},
      {"mode",
       [](RedFatOptions* o, const TierProfile*) { o->mode = RedFatOptions::Mode::kProfile; }},
      {"trampoline_base",
       [](RedFatOptions* o, const TierProfile*) { o->trampoline_base += 0x10000; }},
      {"tier_profile",
       [](RedFatOptions* o, const TierProfile* p) { o->tier_profile = p; }},
      {"hot_threshold",
       [](RedFatOptions* o, const TierProfile*) { o->hot_threshold = 0.5; }},
  };

  const uint64_t base_fp = OptionsFingerprint(base);
  std::vector<std::pair<std::string, uint64_t>> fps = {{"<base>", base_fp}};
  for (const Perturbation& p : perturbations) {
    RedFatOptions mutated = base;
    p.apply(&mutated, &dummy_profile);
    fps.emplace_back(p.field, OptionsFingerprint(mutated));
  }
  for (size_t i = 0; i < fps.size(); ++i) {
    for (size_t j = i + 1; j < fps.size(); ++j) {
      EXPECT_NE(fps[i].second, fps[j].second)
          << fps[i].first << " and " << fps[j].first << " collide";
    }
  }
}

TEST(OptionsFingerprint, BlobRoundTripsAndRejectsGarbage) {
  RedFatOptions opts;
  opts.check_reads = false;
  opts.jobs = 3;
  opts.mode = RedFatOptions::Mode::kProfile;
  opts.trampoline_base = 0x7100000;
  opts.hot_threshold = 0.75;
  const std::vector<uint8_t> blob = CanonicalOptionsBlob(opts);
  Result<RedFatOptions> back = OptionsFromBlob(blob);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(CanonicalOptionsBlob(back.value()), blob);

  std::vector<uint8_t> truncated(blob.begin(), blob.end() - 1);
  EXPECT_FALSE(OptionsFromBlob(truncated).ok());
  std::vector<uint8_t> bad_version = blob;
  bad_version[0] = 99;
  EXPECT_FALSE(OptionsFromBlob(bad_version).ok());
  std::vector<uint8_t> bad_mode = blob;
  bad_mode[16] = 9;
  EXPECT_FALSE(OptionsFromBlob(bad_mode).ok());
}

TEST(OptionsFingerprint, CacheKeyNormalizesTransportKnobs) {
  // --jobs never changes the output bytes, so it must not split cache
  // entries; check-selection knobs must.
  RedFatOptions one_job;
  RedFatOptions four_jobs;
  four_jobs.jobs = 4;
  EXPECT_EQ(CacheOptionsFingerprint(one_job), CacheOptionsFingerprint(four_jobs));
  RedFatOptions no_merge;
  no_merge.merge = false;
  EXPECT_NE(CacheOptionsFingerprint(one_job), CacheOptionsFingerprint(no_merge));
  // hot_threshold steers tiered output: it stays in the key.
  RedFatOptions low_threshold;
  low_threshold.hot_threshold = 0.25;
  EXPECT_NE(CacheOptionsFingerprint(one_job), CacheOptionsFingerprint(low_threshold));
}

// --- artifact cache ----------------------------------------------------------

CacheKey KeyOf(uint64_t image_hash) {
  CacheKey k;
  k.image_hash = image_hash;
  k.options_fp = 1;
  return k;
}

CachedArtifact ArtifactOfSize(size_t n) {
  CachedArtifact a;
  a.image_bytes.assign(n, 0xab);
  return a;
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedOverBudget) {
  ArtifactCache cache(250);
  cache.Insert(KeyOf(1), ArtifactOfSize(100));
  cache.Insert(KeyOf(2), ArtifactOfSize(100));
  // Touch key 1 so key 2 is the LRU victim.
  EXPECT_TRUE(cache.Lookup(KeyOf(1), nullptr));
  cache.Insert(KeyOf(3), ArtifactOfSize(100));
  EXPECT_TRUE(cache.Lookup(KeyOf(1), nullptr));
  EXPECT_FALSE(cache.Lookup(KeyOf(2), nullptr));
  EXPECT_TRUE(cache.Lookup(KeyOf(3), nullptr));
  const ArtifactCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.bytes, 250u);
}

TEST(ArtifactCache, OversizedSingleEntryStaysResident) {
  ArtifactCache cache(10);
  cache.Insert(KeyOf(1), ArtifactOfSize(100));
  EXPECT_TRUE(cache.Lookup(KeyOf(1), nullptr));
  cache.Insert(KeyOf(2), ArtifactOfSize(100));
  EXPECT_FALSE(cache.Lookup(KeyOf(1), nullptr));
  EXPECT_TRUE(cache.Lookup(KeyOf(2), nullptr));
}

// --- warm service: hit / miss byte identity and pipeline reuse ---------------

TEST(RewriteService, HitAndMissAreByteIdenticalToOffline) {
  const BinaryImage img = SynthImage(11);
  const std::vector<uint8_t> wire = img.Serialize();
  const RedFatOptions opts;
  const OfflineResult offline = OfflineRewrite(img, opts);

  RewriteService::Config cfg;
  cfg.jobs = 2;
  RewriteService svc(cfg);

  Result<RewriteService::Outcome> miss = svc.Rewrite(wire, opts, "");
  ASSERT_TRUE(miss.ok()) << miss.error();
  EXPECT_FALSE(miss.value().cache_hit);
  EXPECT_EQ(miss.value().image_bytes, offline.image_bytes);
  EXPECT_EQ(miss.value().sitemap, offline.sitemap);

  Result<RewriteService::Outcome> hit = svc.Rewrite(wire, opts, "");
  ASSERT_TRUE(hit.ok()) << hit.error();
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_EQ(hit.value().image_bytes, offline.image_bytes);
  EXPECT_EQ(hit.value().sitemap, offline.sitemap);
  EXPECT_EQ(hit.value().key, miss.value().key);

  Result<RewriteService::Outcome> fetched = svc.FetchArtifact(miss.value().key);
  ASSERT_TRUE(fetched.ok()) << fetched.error();
  EXPECT_EQ(fetched.value().image_bytes, offline.image_bytes);

  CacheKey bogus;
  bogus.image_hash = 0xdead;
  EXPECT_FALSE(svc.FetchArtifact(bogus).ok());
}

TEST(RewriteService, WarmPipelineNeverRespawnsPoolsOrLeaksAnalysis) {
  const BinaryImage img_a = SynthImage(21);
  const BinaryImage img_b = SynthImage(22);  // different program entirely
  const RedFatOptions opts;
  RedFatOptions no_merge = opts;
  no_merge.merge = false;

  RewriteService::Config cfg;
  cfg.jobs = 2;
  RewriteService svc(cfg);

  // First request may lazily warm things up; after it, the pool population
  // must be flat across every further request (no per-request respawn).
  Result<RewriteService::Outcome> first = svc.Rewrite(img_a.Serialize(), opts, "");
  ASSERT_TRUE(first.ok()) << first.error();
  const uint64_t pools_after_warmup = ThreadPool::PoolsCreated();

  Result<RewriteService::Outcome> b = svc.Rewrite(img_b.Serialize(), opts, "");
  ASSERT_TRUE(b.ok()) << b.error();
  Result<RewriteService::Outcome> a_again = svc.Rewrite(img_a.Serialize(), opts, "");
  ASSERT_TRUE(a_again.ok()) << a_again.error();
  EXPECT_TRUE(a_again.value().cache_hit);
  Result<RewriteService::Outcome> b_variant =
      svc.Rewrite(img_b.Serialize(), no_merge, "");
  ASSERT_TRUE(b_variant.ok()) << b_variant.error();
  EXPECT_EQ(ThreadPool::PoolsCreated(), pools_after_warmup)
      << "a request respawned a thread pool instead of reusing the warm one";

  // No analysis-state leakage across images or option sets: every warm
  // output matches a fresh offline tool's.
  EXPECT_EQ(first.value().image_bytes, OfflineRewrite(img_a, opts).image_bytes);
  EXPECT_EQ(b.value().image_bytes, OfflineRewrite(img_b, opts).image_bytes);
  EXPECT_EQ(b_variant.value().image_bytes,
            OfflineRewrite(img_b, no_merge).image_bytes);
}

// --- incremental re-tier -----------------------------------------------------

TEST(RewriteService, RetierMatchesOfflineTieredRewrite) {
  const BinaryImage img = SynthImage(31);
  const std::vector<uint8_t> wire = img.Serialize();
  const RedFatOptions opts;

  const OfflineResult offline_untiered = OfflineRewrite(img, opts);
  Result<BinaryImage> hardened = BinaryImage::Deserialize(offline_untiered.image_bytes);
  ASSERT_TRUE(hardened.ok());
  const std::string profile_json = ProfileJsonFromRun(hardened.value());

  // Offline tiered reference, through the same snapshot-JSON parse the
  // daemon applies.
  Result<TierProfile> profile = TierProfileFromSnapshotJson(profile_json);
  ASSERT_TRUE(profile.ok()) << profile.error();
  RedFatOptions tiered_opts = opts;
  tiered_opts.tier_profile = &profile.value();
  const OfflineResult offline_tiered = OfflineRewrite(img, tiered_opts);
  ASSERT_NE(offline_tiered.image_bytes, offline_untiered.image_bytes);

  // Warm path: untiered rewrite deposits the analysis, the tiered request
  // re-enters at the tier pass.
  RewriteService svc(RewriteService::Config{});
  Result<RewriteService::Outcome> base = svc.Rewrite(wire, opts, "");
  ASSERT_TRUE(base.ok()) << base.error();
  EXPECT_EQ(base.value().image_bytes, offline_untiered.image_bytes);
  Result<RewriteService::Outcome> retier = svc.Rewrite(wire, opts, profile_json);
  ASSERT_TRUE(retier.ok()) << retier.error();
  EXPECT_TRUE(retier.value().incremental_retier);
  EXPECT_EQ(retier.value().image_bytes, offline_tiered.image_bytes);
  EXPECT_EQ(retier.value().sitemap, offline_tiered.sitemap);

  // Cold path on a fresh service: full tiered run, same bytes.
  RewriteService cold(RewriteService::Config{});
  Result<RewriteService::Outcome> cold_tiered = cold.Rewrite(wire, opts, profile_json);
  ASSERT_TRUE(cold_tiered.ok()) << cold_tiered.error();
  EXPECT_FALSE(cold_tiered.value().incremental_retier);
  EXPECT_EQ(cold_tiered.value().image_bytes, offline_tiered.image_bytes);

  // The re-tiered artifact is now cached: the same request is a pure hit.
  Result<RewriteService::Outcome> hit = svc.Rewrite(wire, opts, profile_json);
  ASSERT_TRUE(hit.ok()) << hit.error();
  EXPECT_TRUE(hit.value().cache_hit);
  EXPECT_EQ(hit.value().image_bytes, offline_tiered.image_bytes);
}

TEST(RewriteService, UploadProfileRetiersWithoutResendingTheImage) {
  const BinaryImage img = SynthImage(31);
  const std::vector<uint8_t> wire = img.Serialize();
  const RedFatOptions opts;

  const OfflineResult offline_untiered = OfflineRewrite(img, opts);
  Result<BinaryImage> hardened = BinaryImage::Deserialize(offline_untiered.image_bytes);
  ASSERT_TRUE(hardened.ok());
  const std::string profile_json = ProfileJsonFromRun(hardened.value());
  Result<TierProfile> profile = TierProfileFromSnapshotJson(profile_json);
  ASSERT_TRUE(profile.ok());
  RedFatOptions tiered_opts = opts;
  tiered_opts.tier_profile = &profile.value();
  const OfflineResult offline_tiered = OfflineRewrite(img, tiered_opts);

  RewriteService svc(RewriteService::Config{});
  ASSERT_TRUE(svc.Rewrite(wire, opts, "").ok());
  const uint64_t image_hash = Fnv1a64(wire);
  Result<RewriteService::Outcome> up = svc.UploadProfile(image_hash, opts, profile_json);
  ASSERT_TRUE(up.ok()) << up.error();
  EXPECT_TRUE(up.value().incremental_retier);
  EXPECT_EQ(up.value().image_bytes, offline_tiered.image_bytes);

  // Without warm analysis the upload has nothing to re-tier against.
  RewriteService cold(RewriteService::Config{});
  Result<RewriteService::Outcome> missing =
      cold.UploadProfile(image_hash, opts, profile_json);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().find("no warm analysis"), std::string::npos);
}

TEST(RewriteService, LruBudgetEvictsOldImages) {
  RewriteService::Config cfg;
  cfg.cache_bytes = 1;  // every insert evicts everything but itself
  RewriteService svc(cfg);
  const RedFatOptions opts;

  Result<RewriteService::Outcome> a = svc.Rewrite(SynthImage(41).Serialize(), opts, "");
  ASSERT_TRUE(a.ok()) << a.error();
  Result<RewriteService::Outcome> b = svc.Rewrite(SynthImage(42).Serialize(), opts, "");
  ASSERT_TRUE(b.ok()) << b.error();

  EXPECT_FALSE(svc.FetchArtifact(a.value().key).ok());
  ASSERT_TRUE(svc.FetchArtifact(b.value().key).ok());
  EXPECT_GE(svc.cache().stats().evictions, 1u);
}

TEST(RewriteService, StatsReportLatencyPercentiles) {
  RewriteService svc(RewriteService::Config{});
  const RedFatOptions opts;
  ASSERT_TRUE(svc.Rewrite(SynthImage(51).Serialize(), opts, "").ok());
  const std::string json = svc.StatsJson();
  EXPECT_NE(json.find("\"requests\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"request_latency_cycles\":{\"count\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// --- daemon end-to-end over a real socket ------------------------------------

class DaemonFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = StrFormat("/tmp/redfatd_test_%d_%s.sock", getpid(),
                             ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name());
    Daemon::Config config;
    config.socket_path = socket_path_;
    config.service.jobs = 2;
    daemon_ = std::make_unique<Daemon>(config);
    ASSERT_TRUE(daemon_->Listen().ok());
    serve_thread_ = std::thread([this] { serve_status_ = daemon_->Serve(); });
  }

  void TearDown() override {
    if (serve_thread_.joinable()) {
      DaemonClient client;
      if (client.Connect(socket_path_).ok()) {
        (void)client.Shutdown();
      } else {
        daemon_->Stop();
      }
      serve_thread_.join();
      EXPECT_TRUE(serve_status_.ok()) << serve_status_.error();
    }
  }

  std::string socket_path_;
  std::unique_ptr<Daemon> daemon_;
  std::thread serve_thread_;
  Status serve_status_;
};

TEST_F(DaemonFixture, ConcurrentClientsGetByteIdenticalImages) {
  const RedFatOptions opts;
  constexpr int kClients = 4;
  std::vector<BinaryImage> images;
  std::vector<OfflineResult> offline;
  for (int i = 0; i < kClients; ++i) {
    images.push_back(SynthImage(60 + i % 2));  // two distinct programs
    offline.push_back(OfflineRewrite(images.back(), opts));
  }

  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      DaemonClient client;
      Status c = client.Connect(socket_path_);
      if (!c.ok()) {
        failures[i] = c.error();
        return;
      }
      // Each client sends its request twice: the second round is served
      // from the cache and must be identical.
      for (int round = 0; round < 2; ++round) {
        Result<DaemonClient::RewriteReply> r =
            client.Rewrite(images[i].Serialize(), opts, "");
        if (!r.ok()) {
          failures[i] = r.error();
          return;
        }
        if (r.value().image_bytes != offline[i].image_bytes ||
            r.value().sitemap != offline[i].sitemap) {
          failures[i] = "daemon bytes differ from offline rewrite";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(failures[i].empty()) << "client " << i << ": " << failures[i];
  }

  DaemonClient stats_client;
  ASSERT_TRUE(stats_client.Connect(socket_path_).ok());
  Result<std::string> stats = stats_client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_NE(stats.value().find("\"hits\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"queue_depth\""), std::string::npos);
}

TEST_F(DaemonFixture, UploadProfileRoundTripMatchesOfflineTieredBuild) {
  const BinaryImage img = SynthImage(70);
  const RedFatOptions opts;
  const OfflineResult offline_untiered = OfflineRewrite(img, opts);
  Result<BinaryImage> hardened = BinaryImage::Deserialize(offline_untiered.image_bytes);
  ASSERT_TRUE(hardened.ok());
  const std::string profile_json = ProfileJsonFromRun(hardened.value());
  Result<TierProfile> profile = TierProfileFromSnapshotJson(profile_json);
  ASSERT_TRUE(profile.ok());
  RedFatOptions tiered_opts = opts;
  tiered_opts.tier_profile = &profile.value();
  const OfflineResult offline_tiered = OfflineRewrite(img, tiered_opts);

  DaemonClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  Result<DaemonClient::RewriteReply> base =
      client.Rewrite(img.Serialize(), opts, "");
  ASSERT_TRUE(base.ok()) << base.error();
  EXPECT_EQ(base.value().image_bytes, offline_untiered.image_bytes);

  Result<DaemonClient::RewriteReply> up =
      client.UploadProfile(base.value().key.image_hash, opts, profile_json);
  ASSERT_TRUE(up.ok()) << up.error();
  EXPECT_TRUE(up.value().incremental_retier);
  EXPECT_EQ(up.value().image_bytes, offline_tiered.image_bytes);

  // The re-tiered artifact is fetchable by its key.
  Result<DaemonClient::RewriteReply> fetched = client.FetchArtifact(up.value().key);
  ASSERT_TRUE(fetched.ok()) << fetched.error();
  EXPECT_EQ(fetched.value().image_bytes, offline_tiered.image_bytes);

  // An unknown key is a clean kNotFound-class error, not a hang or close.
  CacheKey bogus;
  bogus.image_hash = 0xfeed;
  EXPECT_FALSE(client.FetchArtifact(bogus).ok());
}

TEST_F(DaemonFixture, MalformedFramesAreRejectedWithoutKillingTheDaemon) {
  // Raw garbage (bad magic): the daemon answers with a malformed-frame
  // error (when it can) and closes that connection only.
  {
    Result<int> fd = ConnectUnix(socket_path_);
    ASSERT_TRUE(fd.ok()) << fd.error();
    const uint8_t garbage[16] = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_EQ(write(fd.value(), garbage, sizeof(garbage)),
              static_cast<ssize_t>(sizeof(garbage)));
    Result<Frame> reply = ReadFrame(fd.value());
    if (reply.ok()) {
      EXPECT_EQ(reply.value().type, MsgType::kError);
    }
    close(fd.value());
  }

  // Well-framed but truncated body: error reply, connection stays usable.
  {
    Result<int> fd = ConnectUnix(socket_path_);
    ASSERT_TRUE(fd.ok()) << fd.error();
    std::vector<uint8_t> short_body = {0x01};  // kRewrite body cut mid-field
    ASSERT_TRUE(WriteFrame(fd.value(), MsgType::kRewrite, short_body).ok());
    Result<Frame> reply = ReadFrame(fd.value());
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(reply.value().type, MsgType::kError);
    // Same connection, now a valid request.
    ASSERT_TRUE(WriteFrame(fd.value(), MsgType::kStats, {}).ok());
    Result<Frame> stats = ReadFrame(fd.value());
    ASSERT_TRUE(stats.ok()) << stats.error();
    EXPECT_EQ(stats.value().type, MsgType::kOk);
    close(fd.value());
  }

  // The daemon survived both abuses.
  DaemonClient client;
  ASSERT_TRUE(client.Connect(socket_path_).ok());
  Result<std::string> stats = client.Stats();
  EXPECT_TRUE(stats.ok()) << (stats.ok() ? "" : stats.error());
}

TEST(DaemonClientFallback, ConnectFailsFastWhenNoDaemonListens) {
  DaemonClient client;
  Status s = client.Connect("/tmp/redfatd_test_no_such_daemon.sock");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(client.connected());
}

TEST(DaemonListen, SecondDaemonOnALiveSocketIsRejected) {
  const std::string path = StrFormat("/tmp/redfatd_test_%d_dup.sock", getpid());
  Daemon::Config config;
  config.socket_path = path;
  Daemon first(config);
  ASSERT_TRUE(first.Listen().ok());
  std::thread serve([&] { (void)first.Serve(); });

  Daemon second(config);
  Status s = second.Listen();
  EXPECT_FALSE(s.ok());

  DaemonClient client;
  ASSERT_TRUE(client.Connect(path).ok());
  ASSERT_TRUE(client.Shutdown().ok());
  serve.join();
}

}  // namespace
}  // namespace redfat
