#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/core/redfat.h"
#include "src/workloads/builder.h"

namespace redfat {
namespace {

InstrumentResult MustInstrument(const BinaryImage& img, const RedFatOptions& opts,
                                const AllowList* allow = nullptr) {
  RedFatTool tool(opts);
  Result<InstrumentResult> r = tool.Instrument(img, allow);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error());
  return std::move(r).value();
}

// --- guest programs --------------------------------------------------------

// Allocates a 64-byte array, fills it, sums it, prints the sum, frees it.
BinaryImage ValidHeapProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRcx, 0);
  auto fill = as.NewLabel();
  as.Bind(fill);
  as.Store(Reg::kRcx, MemBIS(Reg::kR12, Reg::kRcx, 3, 0));
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 8);
  as.Jcc(Cond::kUlt, fill);
  as.MovRI(Reg::kRbx, 0);
  as.MovRI(Reg::kRcx, 0);
  auto sum = as.NewLabel();
  as.Bind(sum);
  as.Load(Reg::kRax, MemBIS(Reg::kR12, Reg::kRcx, 3, 0));
  as.Add(Reg::kRbx, Reg::kRax);
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 8);
  as.Jcc(Cond::kUlt, sum);
  as.MovRR(Reg::kRdi, Reg::kRbx);
  as.HostCall(HostFn::kOutputU64);
  as.MovRR(Reg::kRdi, Reg::kR12);
  as.HostCall(HostFn::kFree);
  pb.EmitExit(0);
  return pb.Finish();
}

// Two adjacent 64-byte objects; writes p[input()] (8-byte elements).
// input = 10 skips p's trailing redzone into q's payload (non-incremental);
// input = 8 lands in the redzone (incremental-style); input < 8 is valid.
BinaryImage AdjacentOverflowProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);  // p
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR13, Reg::kRax);  // q (adjacent slot)
  // Make q fully valid data so a skipped overflow lands in real data.
  as.MovRI(Reg::kRax, 0x7777);
  as.Store(Reg::kRax, MemAt(Reg::kR13, 0));
  as.HostCall(HostFn::kInputU64);
  as.Store(Reg::kRax, MemBIS(Reg::kR12, Reg::kRax, 3, 0));  // p[i] = i
  as.Load(Reg::kRdi, MemAt(Reg::kR13, 0));
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

BinaryImage UseAfterFreeProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 32);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.MovRI(Reg::kRax, 5);
  as.Store(Reg::kRax, MemAt(Reg::kR12, 0));
  as.MovRR(Reg::kRdi, Reg::kR12);
  as.HostCall(HostFn::kFree);
  as.Load(Reg::kRdi, MemAt(Reg::kR12, 0));  // UAF read
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

BinaryImage UnderflowProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRdi, 64);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);
  as.Load(Reg::kRdi, MemAt(Reg::kR12, -8));  // array[-1]: inside the redzone
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

// The (array - K) anti-idiom (§2 snippet (c)): always a false positive for
// the LowFat check, never an actual error. Also contains an idiomatic loop
// so the profile has something to allow-list.
BinaryImage AntiIdiomProgram() {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  // Dummy allocation so the anti-idiom base pointer lands in a real slot.
  as.MovRI(Reg::kRdi, 80);
  as.HostCall(HostFn::kMalloc);
  as.MovRI(Reg::kRdi, 80);
  as.HostCall(HostFn::kMalloc);
  as.MovRR(Reg::kR12, Reg::kRax);  // arr (10 elements)
  // Idiomatic fill: arr[i] = i for i in [0, 10).
  as.MovRI(Reg::kRcx, 0);
  auto fill = as.NewLabel();
  as.Bind(fill);
  as.Store(Reg::kRcx, MemBIS(Reg::kR12, Reg::kRcx, 3, 0));
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 10);
  as.Jcc(Cond::kUlt, fill);
  // Anti-idiom: fake = arr - 32; access fake[i] for i in [4, 14).
  as.MovRR(Reg::kR13, Reg::kR12);
  as.SubI(Reg::kR13, 32);
  as.MovRI(Reg::kRcx, 4);
  auto loop = as.NewLabel();
  as.Bind(loop);
  as.Load(Reg::kRax, MemBIS(Reg::kR13, Reg::kRcx, 3, 0));
  as.AddI(Reg::kRcx, 1);
  as.CmpI(Reg::kRcx, 14);
  as.Jcc(Cond::kUlt, loop);
  as.MovRR(Reg::kRdi, Reg::kRax);  // last element (= 9)
  as.HostCall(HostFn::kOutputU64);
  pb.EmitExit(0);
  return pb.Finish();
}

// --- tests ------------------------------------------------------------------

TEST(CoreEndToEnd, ValidProgramRunsCleanUnderFullChecking) {
  const BinaryImage img = ValidHeapProgram();
  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});
  RunConfig cfg;
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(base.result.reason, HaltReason::kExit);
  EXPECT_EQ(hard.result.reason, HaltReason::kExit) << "false abort on valid program";
  EXPECT_EQ(base.outputs, hard.outputs);
  EXPECT_TRUE(hard.errors.empty());
  EXPECT_GT(hard.result.cycles, base.result.cycles);
}

TEST(CoreEndToEnd, ValidProgramCleanUnderEveryConfiguration) {
  const BinaryImage img = ValidHeapProgram();
  RunConfig cfg;
  const RunOutcome base = RunImage(img, RuntimeKind::kBaseline, cfg);
  const RedFatOptions configs[] = {
      RedFatOptions::Unoptimized(), RedFatOptions::Elim(),   RedFatOptions::Batch(),
      RedFatOptions::Merge(),       RedFatOptions::NoSize(), RedFatOptions::NoReads(),
      RedFatOptions::Profile()};
  for (const RedFatOptions& opts : configs) {
    const InstrumentResult ir = MustInstrument(img, opts);
    const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
    EXPECT_EQ(hard.result.reason, HaltReason::kExit);
    EXPECT_EQ(hard.outputs, base.outputs);
    EXPECT_TRUE(hard.errors.empty());
  }
}

TEST(CoreEndToEnd, OptimizationsReduceOverheadInOrder) {
  const BinaryImage img = ValidHeapProgram();
  RunConfig cfg;
  uint64_t prev = UINT64_MAX;
  for (const RedFatOptions& opts :
       {RedFatOptions::Unoptimized(), RedFatOptions::Elim(), RedFatOptions::Batch(),
        RedFatOptions::Merge(), RedFatOptions::NoSize(), RedFatOptions::NoReads()}) {
    const InstrumentResult ir = MustInstrument(img, opts);
    const RunOutcome hard = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
    EXPECT_LE(hard.result.cycles, prev) << "each Table-1 step must not slow things down";
    prev = hard.result.cycles;
  }
}

TEST(CoreDetect, IncrementalOverflowIntoRedzone) {
  const BinaryImage img = AdjacentOverflowProgram();
  for (bool lowfat : {true, false}) {
    RedFatOptions opts;
    opts.lowfat = lowfat;
    const InstrumentResult ir = MustInstrument(img, opts);
    RunConfig cfg;
    cfg.inputs = {8};  // p[8] -> the next slot's redzone
    const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
    EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort) << "lowfat=" << lowfat;
    ASSERT_EQ(out.errors.size(), 1u);
    EXPECT_EQ(out.errors[0].kind, ErrorKind::kBounds);
  }
}

TEST(CoreDetect, NonIncrementalSkipDetectedOnlyWithLowFat) {
  const BinaryImage img = AdjacentOverflowProgram();
  RunConfig cfg;
  cfg.inputs = {10};  // p[10]: skips the redzone into q's payload

  RedFatOptions full;
  const InstrumentResult ir_full = MustInstrument(img, full);
  const RunOutcome out_full = RunImage(ir_full.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out_full.result.reason, HaltReason::kMemErrorAbort)
      << "(Redzone)+(LowFat) must catch redzone-skipping overflows";

  RedFatOptions rz_only;
  rz_only.lowfat = false;
  const InstrumentResult ir_rz = MustInstrument(img, rz_only);
  const RunOutcome out_rz = RunImage(ir_rz.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out_rz.result.reason, HaltReason::kExit)
      << "redzone-only checking misses the skip (paper Problem #1)";
  EXPECT_EQ(out_rz.outputs[0], 10u) << "q's data was silently corrupted";
}

TEST(CoreDetect, ValidIndexPassesAdjacentProgram) {
  const BinaryImage img = AdjacentOverflowProgram();
  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});
  RunConfig cfg;
  cfg.inputs = {3};
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  EXPECT_TRUE(out.errors.empty());
  EXPECT_EQ(out.outputs[0], 0x7777u);
}

TEST(CoreDetect, UseAfterFree) {
  const BinaryImage img = UseAfterFreeProgram();
  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});
  RunConfig cfg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_GE(out.errors.size(), 1u);
  // With the merged state/size encoding, a UAF manifests as a bounds
  // failure (SIZE == 0); without merged_ub it is classified precisely.
  RedFatOptions unmerged;
  unmerged.merged_ub = false;
  const InstrumentResult ir2 = MustInstrument(img, unmerged);
  const RunOutcome out2 = RunImage(ir2.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out2.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_GE(out2.errors.size(), 1u);
  EXPECT_EQ(out2.errors[0].kind, ErrorKind::kUaf);
}

TEST(CoreDetect, ReadUnderflowIntoRedzone) {
  const BinaryImage img = UnderflowProgram();
  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});
  RunConfig cfg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kMemErrorAbort);
}

TEST(CoreDetect, NoReadsModeMissesReadErrorsButCatchesWrites) {
  const InstrumentResult ir_read =
      MustInstrument(UnderflowProgram(), RedFatOptions::NoReads());
  RunConfig cfg;
  EXPECT_EQ(RunImage(ir_read.image, RuntimeKind::kRedFat, cfg).result.reason,
            HaltReason::kExit)
      << "-reads trades read protection for speed";

  const InstrumentResult ir_write =
      MustInstrument(AdjacentOverflowProgram(), RedFatOptions::NoReads());
  cfg.inputs = {10};
  EXPECT_EQ(RunImage(ir_write.image, RuntimeKind::kRedFat, cfg).result.reason,
            HaltReason::kMemErrorAbort)
      << "writes stay protected under -reads";
}

TEST(CoreDetect, MetadataHardeningCatchesCorruptedSize) {
  // Corrupt the metadata through an *uninstrumented* channel (memset host
  // call, standing in for unprotected library code), then overflow. Without
  // size hardening the bogus huge SIZE hides the overflow; with it the
  // check flags corrupted metadata (paper §4.2 "Metadata hardening").
  auto build = [] {
    ProgramBuilder pb;
    Assembler& as = pb.text();
    as.MovRI(Reg::kRdi, 24);
    as.HostCall(HostFn::kMalloc);
    as.MovRR(Reg::kR12, Reg::kRax);
    as.MovRR(Reg::kRdi, Reg::kR12);
    as.SubI(Reg::kRdi, 16);       // metadata address
    as.MovRI(Reg::kRsi, 0x7f);
    as.MovRI(Reg::kRdx, 8);
    as.HostCall(HostFn::kMemset);  // SIZE = 0x7f7f... (huge, non-wrapping)
    as.MovRI(Reg::kRax, 1);
    as.Store(Reg::kRax, MemAt(Reg::kR12, 100));  // far out of bounds
    pb.EmitExit(0);
    return pb.Finish();
  };
  const BinaryImage img = build();
  RunConfig cfg;

  const InstrumentResult with = MustInstrument(img, RedFatOptions{});
  const RunOutcome out_with = RunImage(with.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out_with.result.reason, HaltReason::kMemErrorAbort);
  ASSERT_EQ(out_with.errors.size(), 1u);
  EXPECT_EQ(out_with.errors[0].kind, ErrorKind::kMeta);

  const InstrumentResult without = MustInstrument(img, RedFatOptions::NoSize());
  const RunOutcome out_without = RunImage(without.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out_without.result.reason, HaltReason::kExit)
      << "-size trades metadata hardening for speed";
}

TEST(CoreFp, AntiIdiomTriggersFalsePositiveWithoutAllowList) {
  const BinaryImage img = AntiIdiomProgram();
  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});  // full-on
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(out.result.reason, HaltReason::kExit);
  EXPECT_FALSE(out.errors.empty()) << "anti-idiom must trip the LowFat check";
  EXPECT_EQ(out.outputs[0], 9u) << "the accesses themselves are valid";
}

TEST(CoreFp, ProfileWorkflowEliminatesFalsePositives) {
  const BinaryImage img = AntiIdiomProgram();
  // Step 1: profiling run.
  const InstrumentResult prof = MustInstrument(img, RedFatOptions::Profile());
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  const RunOutcome prof_out = RunImage(prof.image, RuntimeKind::kRedFat, cfg);
  EXPECT_EQ(prof_out.result.reason, HaltReason::kExit);
  const AllowList allow = BuildAllowList(prof_out.prof_counts, prof.sites);
  EXPECT_FALSE(allow.addrs.empty()) << "idiomatic sites must be allow-listed";

  // Step 2: production run with the allow-list: no false positives, and the
  // anti-idiom site fell back to (Redzone)-only.
  const InstrumentResult hard = MustInstrument(img, RedFatOptions{}, &allow);
  RunConfig prod;
  const RunOutcome out = RunImage(hard.image, RuntimeKind::kRedFat, prod);
  EXPECT_EQ(out.result.reason, HaltReason::kExit) << "no false abort in production";
  EXPECT_TRUE(out.errors.empty());
  EXPECT_LT(hard.plan_stats.full_sites, prof.plan_stats.full_sites);
}

TEST(CoreFp, ProfileCountsSeparatePassAndFail) {
  const BinaryImage img = AntiIdiomProgram();
  const InstrumentResult prof = MustInstrument(img, RedFatOptions::Profile());
  RunConfig cfg;
  cfg.policy = Policy::kLog;
  const RunOutcome out = RunImage(prof.image, RuntimeKind::kRedFat, cfg);
  bool saw_always_fail = false;
  bool saw_always_pass = false;
  for (const auto& [site, counts] : out.prof_counts) {
    if (counts.fails > 0 && counts.passes == 0) {
      saw_always_fail = true;
    }
    if (counts.passes > 0 && counts.fails == 0) {
      saw_always_pass = true;
    }
  }
  EXPECT_TRUE(saw_always_fail) << "anti-idiom site always fails (§5 hypothesis)";
  EXPECT_TRUE(saw_always_pass) << "idiomatic site always passes";
}

TEST(CoreCoverage, CountersClassifySites) {
  const BinaryImage img = ValidHeapProgram();
  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});
  RunConfig cfg;
  const RunOutcome out = RunImage(ir.image, RuntimeKind::kRedFat, cfg);
  const CoverageStats cov = ComputeCoverage(out.counters, ir.sites);
  // All of the program's heap accesses carry an unambiguous base pointer:
  // full coverage under full-on instrumentation.
  EXPECT_GT(cov.full, 0u);
  EXPECT_EQ(cov.redzone_only, 0u);
  EXPECT_DOUBLE_EQ(cov.FullFraction(), 1.0);
  // 8 stores + 8 loads in the loops.
  EXPECT_EQ(cov.full, 16u);
}

TEST(CorePlan, EliminationDropsNonHeapOperands) {
  ProgramBuilder pb;
  const uint64_t glob = pb.AddZeroData(8);
  Assembler& as = pb.text();
  as.StoreI(MemAbs(static_cast<int32_t>(glob)), 1);   // absolute: eliminable
  as.StoreI(MemAt(Reg::kRsp, -8), 2);                 // stack: eliminable
  as.Load(Reg::kRax, MemAt(Reg::kRip, 0x100));        // rip: eliminable
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));           // heap-capable: kept
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();
  const InstrumentResult ir = MustInstrument(img, RedFatOptions{});
  EXPECT_EQ(ir.plan_stats.mem_operands, 4u);
  EXPECT_EQ(ir.plan_stats.eliminated, 3u);
  EXPECT_EQ(ir.sites.size(), 1u);

  const InstrumentResult unopt = MustInstrument(img, RedFatOptions::Unoptimized());
  EXPECT_EQ(unopt.plan_stats.eliminated, 0u);
  EXPECT_EQ(unopt.sites.size(), 4u);
}

TEST(CorePlan, IndexedStackOperandIsNotEliminated) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Store(Reg::kRax, MemBIS(Reg::kRsp, Reg::kRcx, 3, 0));  // index: not eliminable
  pb.EmitExit(0);
  const InstrumentResult ir = MustInstrument(pb.Finish(), RedFatOptions{});
  EXPECT_EQ(ir.plan_stats.eliminated, 0u);
  ASSERT_EQ(ir.sites.size(), 1u);
  EXPECT_EQ(ir.sites[0].kind, CheckKind::kRedzoneOnly)
      << "rsp base is not an unambiguous pointer";
}

TEST(CorePlan, BatchingGroupsBasicBlockStores) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.MovRI(Reg::kRbx, 0);
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 16));
  pb.EmitExit(0);
  const BinaryImage img = pb.Finish();

  const InstrumentResult batched = MustInstrument(img, RedFatOptions::Batch());
  EXPECT_EQ(batched.plan_stats.trampolines, 1u);
  EXPECT_EQ(batched.plan_stats.checks_emitted, 3u);

  const InstrumentResult merged = MustInstrument(img, RedFatOptions::Merge());
  EXPECT_EQ(merged.plan_stats.trampolines, 1u);
  EXPECT_EQ(merged.plan_stats.checks_emitted, 1u) << "same-shape operands merge";

  const InstrumentResult unopt = MustInstrument(img, RedFatOptions::Unoptimized());
  EXPECT_EQ(unopt.plan_stats.trampolines, 3u);
}

TEST(CorePlan, BatchBreaksWhenBaseRegisterIsRewritten) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.MovRI(Reg::kRbx, 0x999);  // rewrites the base register
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  pb.EmitExit(0);
  const InstrumentResult ir = MustInstrument(pb.Finish(), RedFatOptions::Merge());
  EXPECT_EQ(ir.plan_stats.trampolines, 2u)
      << "the second store's address differs at the leader: no batching";
}

TEST(CorePlan, HostCallIsABatchBarrier) {
  ProgramBuilder pb;
  Assembler& as = pb.text();
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 0));
  as.HostCall(HostFn::kRandU64);  // could be free(): barrier
  as.Store(Reg::kRax, MemAt(Reg::kRbx, 8));
  pb.EmitExit(0);
  const InstrumentResult ir = MustInstrument(pb.Finish(), RedFatOptions::Merge());
  EXPECT_EQ(ir.plan_stats.trampolines, 2u);
}

TEST(CorePlan, MergedCheckStillDetectsAndAllowsValid) {
  // Three adjacent stores, merged into one ranged check.
  auto build = [](int32_t disp2) {
    ProgramBuilder pb;
    Assembler& as = pb.text();
    as.MovRI(Reg::kRdi, 24);
    as.HostCall(HostFn::kMalloc);
    as.MovRR(Reg::kRbx, Reg::kRax);
    as.StoreI(MemAt(Reg::kRbx, 0), 1);
    as.StoreI(MemAt(Reg::kRbx, 8), 2);
    as.StoreI(MemAt(Reg::kRbx, disp2), 3);
    pb.EmitExit(0);
    return pb.Finish();
  };
  RunConfig cfg;
  const InstrumentResult ok = MustInstrument(build(16), RedFatOptions::Merge());
  EXPECT_EQ(RunImage(ok.image, RuntimeKind::kRedFat, cfg).result.reason, HaltReason::kExit);
  const InstrumentResult bad = MustInstrument(build(24), RedFatOptions::Merge());
  EXPECT_EQ(RunImage(bad.image, RuntimeKind::kRedFat, cfg).result.reason,
            HaltReason::kMemErrorAbort)
      << "the union range extends past the 24-byte object";
}

}  // namespace
}  // namespace redfat
