// Tests for the interval-sampling guest profiler (vm/profiler.h): sampling
// determinism across engines, zero guest-visible cost, folded output,
// trace instants and the synthesized telemetry snapshot.
#include <gtest/gtest.h>

#include "src/core/harness.h"
#include "src/core/policy.h"
#include "src/core/redfat.h"
#include "src/support/trace.h"
#include "src/vm/profiler.h"
#include "src/workloads/synth.h"

namespace redfat {
namespace {

ResolvedPolicy ResolveTier(HardenTier tier) {
  HardeningPolicy p;
  p.tier = tier;
  return p.Resolve().value();
}

InstrumentResult HardenedSynth() {
  SynthParams p;
  p.seed = 7;
  return RedFatTool(ResolveTier(HardenTier::kExtensive))
      .Instrument(GenerateSynthProgram(p))
      .value();
}

RunOutcome RunWith(const BinaryImage& image, SampleProfiler* sampler,
                   VmEngine engine = VmEngine::kBlock, bool chain = true,
                   bool specialize = true) {
  RunConfig cfg;
  cfg.inputs = TrainInputs(20);
  cfg.sampler = sampler;
  cfg.engine = engine;
  cfg.chain = chain;
  cfg.specialize = specialize;
  return RunImage(image, RuntimeKind::kRedFat, cfg);
}

TEST(SampleProfiler, SamplesAreDeterministicAndEngineInvariant) {
  const InstrumentResult hard = HardenedSynth();
  SampleProfiler block_sampler(101);
  SampleProfiler step_sampler(101);
  const RunOutcome a = RunWith(hard.image, &block_sampler, VmEngine::kBlock);
  const RunOutcome b = RunWith(hard.image, &step_sampler, VmEngine::kStep);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_GT(block_sampler.samples(), 0u);
  EXPECT_EQ(block_sampler.samples(), step_sampler.samples());
  EXPECT_EQ(block_sampler.ToFolded(), step_sampler.ToFolded());
  EXPECT_EQ(block_sampler.SynthesizeMetrics().ToJson(),
            step_sampler.SynthesizeMetrics().ToJson());
  // Sample count matches the period arithmetic exactly.
  EXPECT_EQ(block_sampler.samples(), a.result.instructions / 101);
}

// Samples taken while execution is inside chained block sequences and baked
// traces must attribute to the same addresses/regions as under the stepper:
// the folded flamegraph output and synthesized per-site metrics are
// dispatch-mode-invariant across step, plain block, and chained dispatch.
TEST(SampleProfiler, FoldedOutputInvariantUnderChainingAndTraces) {
  const InstrumentResult hard = HardenedSynth();
  SampleProfiler step_sampler(101);
  SampleProfiler block_sampler(101);
  SampleProfiler chained_sampler(101);
  const RunOutcome s = RunWith(hard.image, &step_sampler, VmEngine::kStep);
  const RunOutcome b =
      RunWith(hard.image, &block_sampler, VmEngine::kBlock, /*chain=*/false,
              /*specialize=*/false);
  const RunOutcome c = RunWith(hard.image, &chained_sampler, VmEngine::kBlock);
  // The chained run actually exercised chaining (sampling doesn't force the
  // unchained fallback the way a per-instruction observer does).
  EXPECT_GT(c.dispatch.block_chains, 0u);
  EXPECT_EQ(b.dispatch.block_chains, 0u);
  EXPECT_EQ(s.result.cycles, c.result.cycles);
  EXPECT_EQ(b.result.cycles, c.result.cycles);
  EXPECT_GT(chained_sampler.samples(), 0u);
  EXPECT_EQ(step_sampler.samples(), chained_sampler.samples());
  EXPECT_EQ(block_sampler.samples(), chained_sampler.samples());
  EXPECT_EQ(step_sampler.ToFolded(), chained_sampler.ToFolded());
  EXPECT_EQ(block_sampler.ToFolded(), chained_sampler.ToFolded());
  EXPECT_EQ(step_sampler.SynthesizeMetrics().ToJson(),
            chained_sampler.SynthesizeMetrics().ToJson());
}

TEST(SampleProfiler, AttachingTheSamplerDoesNotChangeTheRun) {
  const InstrumentResult hard = HardenedSynth();
  const RunOutcome plain = RunWith(hard.image, nullptr);
  SampleProfiler sampler(17);
  const RunOutcome sampled = RunWith(hard.image, &sampler);
  EXPECT_EQ(plain.result.cycles, sampled.result.cycles);
  EXPECT_EQ(plain.result.instructions, sampled.result.instructions);
  EXPECT_EQ(plain.outputs, sampled.outputs);
}

TEST(SampleProfiler, HardenedRunAttributesTrampolineSamples) {
  const InstrumentResult hard = HardenedSynth();
  SampleProfiler sampler(23);
  RunWith(hard.image, &sampler);
  const std::string folded = sampler.ToFolded();
  EXPECT_NE(folded.find(";user;"), std::string::npos);
  EXPECT_NE(folded.find(";tramp;site#"), std::string::npos);
}

TEST(SampleProfiler, FoldedOutputFormat) {
  SampleProfiler p(100);
  p.SetImageName(0, "prog.rfbin");
  // Two user samples in the same 64-byte bucket, one tramp sample at a site.
  p.TakeSample(0x400010, 100, 500, 0, SampleProfiler::Region::kUser, false, 0);
  p.TakeSample(0x400030, 200, 900, 0, SampleProfiler::Region::kUser, false, 0);
  p.TakeSample(0x10400000, 300, 1200, 0, SampleProfiler::Region::kTramp, true, 42);
  EXPECT_EQ(p.samples(), 3u);
  EXPECT_EQ(p.ToFolded(),
            "prog.rfbin;user;0x400000 2\n"
            "prog.rfbin;tramp;site#42 1\n");
}

TEST(SampleProfiler, SynthesizedMetricsEstimateSiteCosts) {
  SampleProfiler p(50);
  for (int i = 0; i < 4; ++i) {
    p.TakeSample(0x10400000, 50 * (i + 1), 100, 0,
                 SampleProfiler::Region::kTramp, true, 7);
  }
  p.TakeSample(0x400000, 250, 600, 0, SampleProfiler::Region::kInline, true, 9);
  p.TakeSample(0x400040, 300, 700, 0, SampleProfiler::Region::kUser, false, 0);

  const TelemetrySnapshot snap = p.SynthesizeMetrics();
  const SiteTelemetry* s7 = snap.FindSite(7);
  ASSERT_NE(s7, nullptr);
  EXPECT_EQ(s7->checks(), 4u);
  EXPECT_EQ(s7->tramp_cycles(), 200u);  // samples * period
  EXPECT_EQ(s7->inline_cycles(), 0u);
  const SiteTelemetry* s9 = snap.FindSite(9);
  ASSERT_NE(s9, nullptr);
  EXPECT_EQ(s9->inline_cycles(), 50u);
  EXPECT_EQ(snap.counters.at("profile.period"), 50u);
  EXPECT_EQ(snap.counters.at("profile.samples"), 6u);
  EXPECT_EQ(snap.counters.at("profile.samples_unattributed"), 1u);
}

TEST(SampleProfiler, TraceInstantsCarrySampleArgs) {
  SampleProfiler p(10);
  p.TakeSample(0x400020, 10, 40, 0, SampleProfiler::Region::kUser, false, 0);
  p.TakeSample(0x10400008, 20, 90, 0, SampleProfiler::Region::kTramp, true, 3);
  TraceWriter trace;
  p.AppendTrace(trace);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"sample.user\""), std::string::npos);
  EXPECT_NE(json.find("\"sample.tramp\""), std::string::npos);
  EXPECT_NE(json.find("\"site\":3"), std::string::npos);
}

TEST(SampleProfiler, PeriodZeroClampsToOne) {
  SampleProfiler p(0);
  EXPECT_EQ(p.period(), 1u);
}

}  // namespace
}  // namespace redfat
